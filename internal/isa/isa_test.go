package isa

import "testing"

func TestOpClassification(t *testing.T) {
	memOps := []Op{Load, Store, Prefetch, CacheOp}
	for _, op := range memOps {
		if !op.IsMem() {
			t.Errorf("%v should be a memory op", op)
		}
		if op.IsSync() {
			t.Errorf("%v should not be a sync op", op)
		}
	}
	syncOps := []Op{Lock, Unlock, Barrier}
	for _, op := range syncOps {
		if !op.IsSync() {
			t.Errorf("%v should be a sync op", op)
		}
		if op.IsMem() {
			t.Errorf("%v should not be a memory op", op)
		}
	}
	for _, op := range []Op{IntALU, IntMul, FPAdd, Branch, Cop0, Syscall} {
		if op.IsMem() || op.IsSync() {
			t.Errorf("%v misclassified", op)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty name", op)
		}
	}
	if Load.String() != "load" || IntDiv.String() != "div" {
		t.Error("unexpected mnemonics")
	}
}

func TestR10000Latencies(t *testing.T) {
	lat := R10000Latencies()
	// The values the paper quotes for the §3.1.3 correction.
	if lat[IntMul].Cycles != 5 {
		t.Errorf("multiply latency %d, want 5", lat[IntMul].Cycles)
	}
	if lat[IntDiv].Cycles != 19 {
		t.Errorf("divide latency %d, want 19", lat[IntDiv].Cycles)
	}
	if !lat[Cop0].FlushesPipe {
		t.Error("coprocessor-0 ops must flush the pipeline")
	}
	if lat[IntMul].Unit != UnitMulDiv || lat[IntDiv].Unit != UnitMulDiv {
		t.Error("mul/div must share the unpipelined unit")
	}
	if lat[Load].Unit != UnitLS || lat[Store].Unit != UnitLS {
		t.Error("memory ops must use the load/store unit")
	}
}

func TestUnitLatenciesAreAllOne(t *testing.T) {
	lat := UnitLatencies()
	for op := Op(0); op < NumOps; op++ {
		if lat[op].Cycles != 1 {
			t.Errorf("Mipsy latency for %v = %d, want 1", op, lat[op].Cycles)
		}
		if lat[op].FlushesPipe {
			t.Errorf("Mipsy models no pipeline flush for %v", op)
		}
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: Load, Addr: 0x1000, Size: 8, Dep2: 1}
	if in.String() == "" {
		t.Fatal("empty render")
	}
	bar := Instr{Op: Barrier, Aux: 3}
	if bar.String() != "barrier #3" {
		t.Fatalf("barrier render %q", bar.String())
	}
}

func TestUnitString(t *testing.T) {
	for u := Unit(0); u < NumUnits; u++ {
		if u.String() == "" {
			t.Errorf("unit %d unnamed", u)
		}
	}
}
