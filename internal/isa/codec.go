package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary codec for instruction streams.
//
// The emitter regenerates workloads on the fly, so the simulator never
// needs serialized programs — but trace files do: dumping a stream for
// offline diffing (two simulator versions fed the identical bytes) or
// archiving the exact instruction sequence behind a cached result. The
// encoding is compact and canonical: one opcode byte, one presence
// byte, then a uvarint per present field. A field is present iff it is
// nonzero, which makes the mapping bijective — every Instr has exactly
// one encoding and every valid encoding decodes to exactly one Instr —
// so round-trip equality can be checked bytewise in both directions.
//
// DecodeInstr never panics on arbitrary input; every malformed byte
// sequence returns an error (FuzzISARoundTrip pins this).

// Presence bits in the second encoding byte, one per optional field.
const (
	flagAddr = 1 << iota
	flagSize
	flagDep1
	flagDep2
	flagAux

	flagsValid = flagAddr | flagSize | flagDep1 | flagDep2 | flagAux
)

// AppendInstr appends the canonical encoding of in to dst and returns
// the extended slice. The instruction must be well-formed (Op < NumOps);
// encoding an out-of-range op is a programming error and panics, since
// no decoder could ever return it.
func AppendInstr(dst []byte, in Instr) []byte {
	if in.Op >= NumOps {
		panic(fmt.Sprintf("isa: encoding invalid op %d", uint8(in.Op)))
	}
	var flags byte
	if in.Addr != 0 {
		flags |= flagAddr
	}
	if in.Size != 0 {
		flags |= flagSize
	}
	if in.Dep1 != 0 {
		flags |= flagDep1
	}
	if in.Dep2 != 0 {
		flags |= flagDep2
	}
	if in.Aux != 0 {
		flags |= flagAux
	}
	dst = append(dst, byte(in.Op), flags)
	if in.Addr != 0 {
		dst = binary.AppendUvarint(dst, in.Addr)
	}
	if in.Size != 0 {
		dst = binary.AppendUvarint(dst, uint64(in.Size))
	}
	if in.Dep1 != 0 {
		dst = binary.AppendUvarint(dst, uint64(in.Dep1))
	}
	if in.Dep2 != 0 {
		dst = binary.AppendUvarint(dst, uint64(in.Dep2))
	}
	if in.Aux != 0 {
		dst = binary.AppendUvarint(dst, uint64(in.Aux))
	}
	return dst
}

// DecodeInstr decodes one instruction from the front of b, returning it
// with the number of bytes consumed. It rejects — with an error, never
// a panic — unknown opcodes, unknown presence bits, truncated or
// overlong varints, field values that overflow their type, and
// non-canonical encodings (a present field holding zero).
func DecodeInstr(b []byte) (Instr, int, error) {
	var in Instr
	if len(b) < 2 {
		return in, 0, fmt.Errorf("isa: truncated instruction header (%d bytes)", len(b))
	}
	if Op(b[0]) >= NumOps {
		return in, 0, fmt.Errorf("isa: unknown opcode %d", b[0])
	}
	in.Op = Op(b[0])
	flags := b[1]
	if flags&^byte(flagsValid) != 0 {
		return in, 0, fmt.Errorf("isa: unknown presence bits %#x", flags&^byte(flagsValid))
	}
	n := 2
	field := func(name string, max uint64) (uint64, error) {
		v, w := binary.Uvarint(b[n:])
		if w <= 0 {
			return 0, fmt.Errorf("isa: bad varint for %s at offset %d", name, n)
		}
		// Reject overlong encodings (0x81 0x00 is 1 in two bytes):
		// canonicality is what makes the codec bijective.
		var tmp [binary.MaxVarintLen64]byte
		if binary.PutUvarint(tmp[:], v) != w {
			return 0, fmt.Errorf("isa: overlong varint for %s at offset %d", name, n)
		}
		n += w
		if v == 0 {
			return 0, fmt.Errorf("isa: non-canonical zero %s", name)
		}
		if v > max {
			return 0, fmt.Errorf("isa: %s %d overflows", name, v)
		}
		return v, nil
	}
	if flags&flagAddr != 0 {
		v, err := field("addr", 1<<64-1)
		if err != nil {
			return in, 0, err
		}
		in.Addr = v
	}
	if flags&flagSize != 0 {
		v, err := field("size", 1<<32-1)
		if err != nil {
			return in, 0, err
		}
		in.Size = uint32(v)
	}
	if flags&flagDep1 != 0 {
		v, err := field("dep1", 1<<32-1)
		if err != nil {
			return in, 0, err
		}
		in.Dep1 = uint32(v)
	}
	if flags&flagDep2 != 0 {
		v, err := field("dep2", 1<<32-1)
		if err != nil {
			return in, 0, err
		}
		in.Dep2 = uint32(v)
	}
	if flags&flagAux != 0 {
		v, err := field("aux", 1<<32-1)
		if err != nil {
			return in, 0, err
		}
		in.Aux = uint32(v)
	}
	return in, n, nil
}

// EncodeStream encodes a whole instruction stream.
func EncodeStream(ins []Instr) []byte {
	var out []byte
	for _, in := range ins {
		out = AppendInstr(out, in)
	}
	return out
}

// DecodeStream decodes a stream until the buffer is exhausted. Any
// malformed instruction fails the whole stream.
func DecodeStream(b []byte) ([]Instr, error) {
	var out []Instr
	for len(b) > 0 {
		in, n, err := DecodeInstr(b)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
		b = b[n:]
	}
	return out, nil
}
