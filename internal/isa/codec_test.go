package isa

import (
	"reflect"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	ins := []Instr{
		{Op: Nop},
		{Op: IntALU, Dep1: 1},
		{Op: Load, Addr: 0xdeadbeef000, Size: 8, Dep1: 3, Dep2: 1},
		{Op: Store, Addr: 0x1000, Size: 4},
		{Op: Prefetch, Addr: 1},
		{Op: Barrier, Aux: 24},
		{Op: Syscall, Aux: 4001},
		{Op: Cop0},
	}
	enc := EncodeStream(ins)
	back, err := DecodeStream(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ins, back) {
		t.Fatalf("round trip changed the stream:\n%v\n%v", ins, back)
	}
	// Bijectivity: re-encoding lands on the same bytes.
	if again := EncodeStream(back); !reflect.DeepEqual(enc, again) {
		t.Fatalf("re-encoding differs:\n% x\n% x", enc, again)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"header only", []byte{byte(Load)}},
		{"bad opcode", []byte{byte(NumOps), 0}},
		{"unknown flag", []byte{byte(Nop), 0x80}},
		{"truncated field", []byte{byte(Load), flagAddr}},
		{"unterminated varint", []byte{byte(Load), flagAddr, 0x80}},
		{"zero present field", []byte{byte(Load), flagAddr, 0x00}},
		{"overlong varint", []byte{byte(Load), flagAddr, 0x81, 0x00}},
		{"size overflow", append([]byte{byte(Load), flagSize}, 0x80, 0x80, 0x80, 0x80, 0x10)},
		{"varint overflow", append([]byte{byte(Load), flagAddr},
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := DecodeInstr(c.b); err == nil {
				t.Fatalf("decode of % x succeeded", c.b)
			}
		})
	}
}

func TestEncodePanicsOnInvalidOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("encoding an out-of-range op must panic")
		}
	}()
	AppendInstr(nil, Instr{Op: NumOps})
}
