// Package magic models the MAGIC programmable node controller: the
// embedded protocol processor (PP) whose handler occupancy FlashLite
// emulates cycle-accurately, the inbox/outbox interfaces, and the memory
// interface. MAGIC runs at the 75 MHz system clock (Table 1).
//
// Handler occupancies play the role of the latencies "extracted directly
// from the Verilog RTL design" in the real FlashLite: every protocol
// message that arrives at a node occupies the PP for a handler-specific
// number of system cycles, and that occupancy — not just latency — is
// what the generic NUMA model omits ("it does not model occupancy of the
// directory controller beyond the normal latency path"), which is why
// NUMA mispredicts the unplaced Radix-Sort hotspot by 31% (Figure 7).
package magic

import "flashsim/internal/sim"

// Handler identifies a protocol handler running on the PP.
type Handler uint8

const (
	// HPILocalGet: processor interface issues a local read request.
	HPILocalGet Handler = iota
	// HPIRemoteGet: processor interface issues a remote read request
	// (encapsulate and hand to the network interface).
	HPIRemoteGet
	// HNILocalGet: home-side read handler, memory clean.
	HNILocalGet
	// HNIGetFwd: home-side read handler that must forward to a dirty
	// owner (sets transient state, sends intervention).
	HNIGetFwd
	// HNIOwnerGet: intervention handler at the dirty owner (pulls the
	// line from the owner's cache, replies, writes back to home).
	HNIOwnerGet
	// HNIPut: reply handler at the requester (deliver data to the
	// processor interface).
	HNIPut
	// HPIGetX: processor interface issues a write/ownership request.
	HPIGetX
	// HNIGetX: home-side write handler (collect sharers, send
	// invalidations, reply with data and ownership).
	HNIGetX
	// HNIInval: invalidation handler at a sharer.
	HNIInval
	// HNIInvalAck: invalidation-acknowledgement collection at home.
	HNIInvalAck
	// HNIWriteback: dirty-eviction writeback handler at home.
	HNIWriteback
	// HNIUncached: uncached/IO operation handler.
	HNIUncached
	// NumHandlers is the handler count.
	NumHandlers
)

var handlerNames = [NumHandlers]string{
	"pi-local-get", "pi-remote-get", "ni-local-get", "ni-get-fwd",
	"ni-owner-get", "ni-put", "pi-getx", "ni-getx", "ni-inval",
	"ni-inval-ack", "ni-writeback", "ni-uncached",
}

// String names the handler.
func (h Handler) String() string {
	if int(h) < len(handlerNames) {
		return handlerNames[h]
	}
	return "handler(?)"
}

// OccupancyTable gives each handler's PP occupancy in 75 MHz system
// cycles. These numbers stand in for the Verilog-extracted latencies of
// the real FlashLite.
type OccupancyTable [NumHandlers]uint32

// RTLOccupancies returns the reference occupancy table used by the
// hardware model and by tuned FlashLite.
func RTLOccupancies() OccupancyTable {
	var t OccupancyTable
	t[HPILocalGet] = 3
	t[HPIRemoteGet] = 4
	t[HNILocalGet] = 6
	t[HNIGetFwd] = 12
	t[HNIOwnerGet] = 14
	t[HNIPut] = 6
	t[HPIGetX] = 5
	t[HNIGetX] = 10
	t[HNIInval] = 6
	t[HNIInvalAck] = 4
	t[HNIWriteback] = 8
	t[HNIUncached] = 20
	return t
}

// MemConfig describes a node's main memory.
type MemConfig struct {
	// FirstWordTicks is access time to the first double-word
	// (Table 1: 140 ns).
	FirstWordTicks sim.Ticks
	// TransferTicks is the additional time to stream a full 128-byte
	// line out of DRAM.
	TransferTicks sim.Ticks
	// Banks is the number of independently contended banks per node.
	Banks int
}

// DefaultMemConfig returns the FLASH node memory parameters.
func DefaultMemConfig() MemConfig {
	return MemConfig{FirstWordTicks: sim.NS(140), TransferTicks: sim.NS(30), Banks: 4}
}

// Config describes one MAGIC instance.
type Config struct {
	// Clock is the system clock (75 MHz on FLASH).
	Clock sim.Clock
	// InboxTicks/OutboxTicks are interface pass-through latencies.
	InboxTicks  sim.Ticks
	OutboxTicks sim.Ticks
	// Table gives PP handler occupancies.
	Table OccupancyTable
	// ModelOccupancy selects whether the PP is a contended resource
	// (FlashLite/hardware) or handler time is pure latency (NUMA).
	ModelOccupancy bool
	// Mem is the node memory configuration.
	Mem MemConfig
}

// DefaultConfig returns the reference MAGIC configuration.
func DefaultConfig() Config {
	return Config{
		Clock:          sim.Clock75,
		InboxTicks:     sim.NS(20),
		OutboxTicks:    sim.NS(20),
		Table:          RTLOccupancies(),
		ModelOccupancy: true,
		Mem:            DefaultMemConfig(),
	}
}

// Controller is one node's MAGIC.
type Controller struct {
	cfg   Config
	pp    sim.Server
	dram  *sim.Banks
	stats CtrlStats
}

// CtrlStats counts controller activity.
type CtrlStats struct {
	Handlers   uint64
	PPCycles   uint64
	MemAccess  uint64
	HandlerCnt [NumHandlers]uint64
}

// New creates a MAGIC instance.
func New(cfg Config) *Controller {
	banks := cfg.Mem.Banks
	if banks <= 0 {
		banks = 1
	}
	return &Controller{cfg: cfg, dram: sim.NewBanks("dram", banks)}
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns accumulated counters.
func (c *Controller) Stats() CtrlStats { return c.stats }

// PPStats returns the protocol processor's utilization counters.
func (c *Controller) PPStats() sim.Stats { return c.pp.Stats() }

// Inbox returns the time a message arriving at t has traversed the
// inbox.
func (c *Controller) Inbox(t sim.Ticks) sim.Ticks { return t + c.cfg.InboxTicks }

// Outbox returns the time a message handed off at t leaves the chip.
func (c *Controller) Outbox(t sim.Ticks) sim.Ticks { return t + c.cfg.OutboxTicks }

// RunHandler schedules handler h at time t with extraCycles of
// additional occupancy (e.g. per-sharer invalidation work). It returns
// the handler completion time. With occupancy modeling on, the PP is a
// FIFO resource and queueing delays accrue — the hotspot mechanism.
func (c *Controller) RunHandler(t sim.Ticks, h Handler, extraCycles uint32) sim.Ticks {
	cyc := uint64(c.cfg.Table[h] + extraCycles)
	dur := c.cfg.Clock.Cycles(cyc)
	c.stats.Handlers++
	c.stats.PPCycles += cyc
	c.stats.HandlerCnt[h]++
	if !c.cfg.ModelOccupancy {
		return t + dur
	}
	_, done := c.pp.Acquire(t, dur)
	return done
}

// Memory performs a DRAM access for the line at physical address pa
// starting at t; fullLine selects whether the whole 128-byte line is
// streamed (reads/writebacks) or only the critical word matters. It
// returns the data-ready time.
func (c *Controller) Memory(t sim.Ticks, pa uint64, fullLine bool) sim.Ticks {
	c.stats.MemAccess++
	dur := c.cfg.Mem.FirstWordTicks
	if fullLine {
		dur += c.cfg.Mem.TransferTicks
	}
	_, done := c.dram.Acquire(pa>>7, t, dur)
	return done
}

// Reset clears reservation state and statistics.
func (c *Controller) Reset() {
	c.pp.Reset()
	c.dram.Reset()
	c.stats = CtrlStats{}
}
