package magic

import (
	"testing"

	"flashsim/internal/sim"
)

func TestHandlerOccupancySerializes(t *testing.T) {
	c := New(DefaultConfig())
	d1 := c.RunHandler(0, HNILocalGet, 0)
	d2 := c.RunHandler(0, HNILocalGet, 0)
	if d2 <= d1 {
		t.Fatalf("PP must serialize handlers: %d vs %d", d1, d2)
	}
	want := sim.Clock75.Cycles(uint64(RTLOccupancies()[HNILocalGet]))
	if d1 != want {
		t.Fatalf("first handler done at %d, want %d", d1, want)
	}
}

func TestOccupancyOffIsPureLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ModelOccupancy = false
	c := New(cfg)
	d1 := c.RunHandler(0, HNILocalGet, 0)
	d2 := c.RunHandler(0, HNILocalGet, 0)
	if d1 != d2 {
		t.Fatalf("latency-only PP must not contend: %d vs %d", d1, d2)
	}
}

func TestExtraCycles(t *testing.T) {
	c := New(DefaultConfig())
	base := c.RunHandler(0, HNIInval, 0)
	c2 := New(DefaultConfig())
	ext := c2.RunHandler(0, HNIInval, 10)
	if ext != base+sim.Clock75.Cycles(10) {
		t.Fatalf("extra cycles: %d vs %d", ext, base)
	}
}

func TestMemoryBankContention(t *testing.T) {
	c := New(DefaultConfig()) // 4 banks, line-interleaved (pa>>7)
	d1 := c.Memory(0, 0<<7, true)
	d2 := c.Memory(0, 4<<7, true) // same bank (4 mod 4 == 0)
	d3 := c.Memory(0, 1<<7, true) // different bank
	if d2 <= d1 {
		t.Fatalf("same bank must serialize: %d vs %d", d1, d2)
	}
	if d3 != d1 {
		t.Fatalf("different banks must not contend: %d vs %d", d3, d1)
	}
}

func TestMemoryCriticalWordVsFullLine(t *testing.T) {
	c := New(DefaultConfig())
	word := c.Memory(0, 0, false)
	c2 := New(DefaultConfig())
	line := c2.Memory(0, 0, true)
	if line <= word {
		t.Fatalf("full line (%d) must exceed first word (%d)", line, word)
	}
	if word != sim.NS(140) {
		t.Fatalf("first word latency %d, want %d", word, sim.NS(140))
	}
}

func TestInboxOutbox(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InboxTicks = 10
	cfg.OutboxTicks = 20
	c := New(cfg)
	if c.Inbox(100) != 110 || c.Outbox(100) != 120 {
		t.Fatal("inbox/outbox latency")
	}
}

func TestStatsAndReset(t *testing.T) {
	c := New(DefaultConfig())
	c.RunHandler(0, HNIGetX, 0)
	c.Memory(0, 0, true)
	st := c.Stats()
	if st.Handlers != 1 || st.MemAccess != 1 || st.HandlerCnt[HNIGetX] != 1 {
		t.Fatalf("stats %+v", st)
	}
	if c.PPStats().Uses != 1 {
		t.Fatal("pp stats")
	}
	c.Reset()
	if c.Stats().Handlers != 0 || c.PPStats().Uses != 0 {
		t.Fatal("reset")
	}
}

func TestHandlerNames(t *testing.T) {
	for h := Handler(0); h < NumHandlers; h++ {
		if h.String() == "" || h.String() == "handler(?)" {
			t.Errorf("handler %d unnamed", h)
		}
	}
}
