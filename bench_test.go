package flashsim_test

// One benchmark per table and figure of the paper's evaluation section,
// plus ablation benchmarks for the modeling choices DESIGN.md calls out.
// Benchmarks run at ScaleQuick so `go test -bench=.` finishes in
// minutes; cmd/validate and cmd/speedup regenerate the full-scale
// numbers recorded in EXPERIMENTS.md.

import (
	"runtime"
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/core"
	"flashsim/internal/emitter"
	"flashsim/internal/harness"
	"flashsim/internal/hw"
	"flashsim/internal/machine"
	"flashsim/internal/runner"
	"flashsim/internal/snbench"
)

// session is shared across benchmarks so calibrations are reused.
var session = harness.NewSession(harness.ScaleQuick)

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3DependentLoads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := session.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1InitialUni(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := session.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2BlockingFixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := session.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3TunedUni(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := session.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4TunedQuad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := session.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5FFTSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := session.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6RadixSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := session.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7Hotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := session.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExperimentTLBCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := session.ExperimentTLBCost(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExperimentBlockingFixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := session.ExperimentBlockingFixes(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExperimentMulDiv(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := session.ExperimentMulDiv(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExperimentDefects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := session.ExperimentDefects(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerSpeedup runs the Figure-1 sweep serially and through a
// pool of GOMAXPROCS workers and reports the wall-clock speedup. On a
// uniprocessor host this hovers near 1.0x; on a 4+ core machine it
// should be well above 2x.
func BenchmarkRunnerSpeedup(b *testing.B) {
	sweep := func(pool *runner.Pool) {
		b.Helper()
		s := harness.NewSessionWithPool(harness.ScaleQuick, pool)
		if _, _, err := s.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		serial := runner.Serial()
		sweep(serial)
		par := runner.New(runtime.GOMAXPROCS(0), nil)
		sweep(par)
		speedup = serial.Stats().Wall.Seconds() / par.Stats().Wall.Seconds()
	}
	b.ReportMetric(speedup, "speedup")
}

// --- Ablations and substrate benchmarks -----------------------------

// benchRun reports simulated-instructions-per-second for one machine
// run — the simulator's own speed, the axis the paper trades against
// detail ("Mipsy runs 4-5 times faster than MXS").
func benchRun(b *testing.B, cfg machine.Config, mk func() emitter.Program) {
	b.Helper()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := machine.Run(cfg, mk())
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Instructions
	}
	b.ReportMetric(float64(instrs), "sim-instrs/op")
}

func quickFFT(procs int) func() emitter.Program {
	return func() emitter.Program {
		return apps.FFT(apps.FFTOpts{LogN: 12, Procs: procs, TLBBlocked: true, Prefetch: true})
	}
}

func BenchmarkSimSpeedMipsy(b *testing.B) {
	benchRun(b, core.SimOSMipsy(1, 150, true), quickFFT(1))
}

func BenchmarkSimSpeedMXS(b *testing.B) {
	benchRun(b, core.SimOSMXS(1, true), quickFFT(1))
}

func BenchmarkSimSpeedSolo(b *testing.B) {
	benchRun(b, core.SoloMipsy(1, 150, true), quickFFT(1))
}

func BenchmarkSimSpeedHardwareModel(b *testing.B) {
	cfg := hw.Config(1, true)
	cfg.JitterPct = 0
	benchRun(b, cfg, quickFFT(1))
}

func BenchmarkAblationNoInterlocks(b *testing.B) {
	cfg := hw.Config(1, true)
	cfg.JitterPct = 0
	cfg.MXS.ModelAddressInterlocks = false
	benchRun(b, cfg, quickFFT(1))
}

func BenchmarkAblationNoOccupancy(b *testing.B) {
	cfg := hw.Config(1, true)
	cfg.JitterPct = 0
	cfg.ModelL2InterfaceOccupancy = false
	benchRun(b, cfg, quickFFT(1))
}

func BenchmarkAblationNUMAMemory(b *testing.B) {
	benchRun(b, core.WithNUMA(core.SimOSMipsy(4, 225, true)), func() emitter.Program {
		return apps.Radix(apps.RadixOpts{Keys: 16 << 10, Radix: 32, Procs: 4})
	})
}

func BenchmarkSnbenchChase(b *testing.B) {
	cfg := hw.Config(4, true)
	cfg.JitterPct = 0
	for i := 0; i < b.N; i++ {
		if _, err := machine.Run(cfg, snbench.DependentLoads(0, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmitterThroughput(b *testing.B) {
	// Raw instruction-stream generation and consumption rate.
	for i := 0; i < b.N; i++ {
		s := emitter.Start(1, func(t *emitter.Thread) { t.IntOps(1 << 16) })
		n := 0
		for {
			if _, ok := s.Readers[0].Next(); !ok {
				break
			}
			n++
		}
		s.Wait()
		if n != 1<<16 {
			b.Fatal("short stream")
		}
	}
	b.ReportMetric(float64(1<<16), "instrs/op")
}
