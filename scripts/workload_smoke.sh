#!/usr/bin/env bash
# Registry-wide workload smoke: every workload the registry knows must
# execute end to end through flashsim at quick scale with the sharded
# engine (-shards 2), and a server-class generator must be servable as
# a flashd job by name with a parameter override. The workload list is
# read from -list-workloads, so a generator registered without riding
# through the execution paths fails CI here.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
pid=

go build -o "$workdir/flashsim" ./cmd/flashsim
go build -o "$workdir/flashd" ./cmd/flashd

# Unindented lines of the listing are the registered names.
names=$("$workdir/flashsim" -list-workloads | grep -v '^ ')
[ -n "$names" ] || { echo "-list-workloads printed nothing" >&2; exit 1; }
count=$(echo "$names" | wc -l)
if [ "$count" -lt 9 ]; then
  echo "registry lists only $count workloads, want at least 9" >&2; exit 1
fi

for name in $names; do
  # The snbench calibration programs carry fixed thread counts; the
  # machine must match them exactly.
  procs=4
  case "$name" in
    snbench.dependent-loads) procs=4 ;;
    snbench.*) procs=1 ;;
  esac
  if ! "$workdir/flashsim" -app "$name" -procs "$procs" -full=false -shards 2 \
      >"$workdir/$name.txt" 2>&1; then
    echo "flashsim -app $name failed:" >&2; cat "$workdir/$name.txt" >&2; exit 1
  fi
  grep -q 'ms simulated' "$workdir/$name.txt" || {
    echo "flashsim -app $name printed no report:" >&2
    cat "$workdir/$name.txt" >&2; exit 1
  }
  echo "flashsim OK: $name"
done

# An unknown name must fail and list what is registered.
if "$workdir/flashsim" -app no-such-workload -full=false >"$workdir/bad.txt" 2>&1; then
  echo "flashsim accepted an unknown workload name" >&2; exit 1
fi
grep -q 'gups' "$workdir/bad.txt" || {
  echo "unknown-workload error does not list registered names:" >&2
  cat "$workdir/bad.txt" >&2; exit 1
}

# One served job: a new-generator spec with a parameter override must
# resolve through the same registry inside flashd.
"$workdir/flashd" -addr 127.0.0.1:0 -cache-dir "$workdir/cache" \
  >"$workdir/flashd.log" 2>&1 &
pid=$!
addr=""
for i in $(seq 1 100); do
  addr=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$workdir/flashd.log" | head -1)
  [ -n "$addr" ] && break
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "flashd died during startup:" >&2; cat "$workdir/flashd.log" >&2; exit 1
  fi
  sleep 0.1
done
[ -n "$addr" ] || { echo "flashd never logged its address" >&2; cat "$workdir/flashd.log" >&2; exit 1; }

req='{"base":"simos-mipsy","procs":2,"workload":{"name":"gups","log_table":10,"updates":256,"hot_pct":50}}'
code=$(curl -sS -o "$workdir/job.json" -w '%{http_code}' -X POST "http://$addr/v1/runs?wait=true" \
  -H 'Content-Type: application/json' -d "$req")
[ "$code" = 200 ] || { echo "gups job: HTTP $code" >&2; cat "$workdir/job.json" >&2; exit 1; }
grep -q '"state": "done"' "$workdir/job.json" || { echo "gups job not done" >&2; exit 1; }

# A typo'd parameter must be a 400, not a silently defaulted run.
badreq='{"base":"simos-mipsy","workload":{"name":"gups","logtable":10}}'
code=$(curl -sS -o "$workdir/badjob.json" -w '%{http_code}' -X POST "http://$addr/v1/runs?wait=true" \
  -H 'Content-Type: application/json' -d "$badreq")
[ "$code" = 400 ] || { echo "bad param: HTTP $code, want 400" >&2; cat "$workdir/badjob.json" >&2; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "flashd exited nonzero:" >&2; cat "$workdir/flashd.log" >&2; exit 1; }
pid=

echo "workload smoke OK: $count workloads simulated sharded, gups served with overrides, bad names and params rejected"
