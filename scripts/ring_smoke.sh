#!/usr/bin/env bash
# End-to-end smoke of the distributed serving tier: boot a 3-replica
# flashd ring, run a spec cold on one replica, verify the result lands
# on its ring owner and that a *different* replica serves the same spec
# as a warm cached hit; then, with a second spec, kill its owner
# outright and require a surviving replica to still answer 200 with a
# bit-identical result (remote hit from the computing replica or a
# deterministic recompute — either is correct by construction).
#
# Ports are picked fresh per run (the -peers list must be known before
# the daemons start, so the kernel's port 0 trick is not enough here).
set -euo pipefail

workdir=$(mktemp -d)
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

read -r p1 p2 p3 < <(python3 - <<'EOF'
import socket
socks = [socket.socket() for _ in range(3)]
for s in socks:
    s.bind(("127.0.0.1", 0))
print(" ".join(str(s.getsockname()[1]) for s in socks))
for s in socks:
    s.close()
EOF
)
urls=("http://127.0.0.1:$p1" "http://127.0.0.1:$p2" "http://127.0.0.1:$p3")

go build -o "$workdir/flashd" ./cmd/flashd
start_replica() { # index port peers...
  local i=$1 port=$2; shift 2
  "$workdir/flashd" -addr "127.0.0.1:$port" -self "http://127.0.0.1:$port" \
    -peers "$(IFS=,; echo "$*")" -health-every 500ms -hedge-after 20ms \
    >"$workdir/r$i.log" 2>&1 &
  pids+=($!)
}
start_replica 1 "$p1" "${urls[1]}" "${urls[2]}"
start_replica 2 "$p2" "${urls[0]}" "${urls[2]}"
start_replica 3 "$p3" "${urls[0]}" "${urls[1]}"

for u in "${urls[@]}"; do
  for i in $(seq 1 100); do
    if curl -fsS "$u/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
  done
  curl -fsS "$u/healthz" >/dev/null || { echo "replica $u never came up" >&2; cat "$workdir"/r*.log >&2; exit 1; }
done

# Every replica must see the full ring live once health has been polled.
sleep 1
live=$(curl -fsS "${urls[0]}/metrics" | sed -n 's/^flashd_store_peers_live \([0-9]*\)$/\1/p')
[ "$live" = 3 ] || { echo "replica 1 sees $live live members, want 3" >&2; exit 1; }

submit() { # out_file replica_url body
  curl -sS -o "$1" -w '%{http_code}' -X POST "$2/v1/runs?wait=true" \
    -H 'Content-Type: application/json' -d "$3"
}
field() { # file json-key -> first value (digits/hex)
  sed -n "s/.*\"$2\": \"\{0,1\}\([0-9a-f]*\)\"\{0,1\}.*/\1/p" "$1" | head -1
}

# ---- Leg 1: cold on replica 1, warm cached hit via replica 2 ----
spec1='{"base":"simos-mipsy","workload":{"name":"snbench.restart","lines":200}}'
code=$(submit "$workdir/cold1.json" "${urls[0]}" "$spec1")
[ "$code" = 200 ] || { echo "cold submit: HTTP $code" >&2; cat "$workdir/cold1.json" >&2; exit 1; }
grep -q '"cached": true' "$workdir/cold1.json" && { echo "cold run claims cached" >&2; exit 1; }
fp1=$(field "$workdir/cold1.json" fingerprint)
[ -n "$fp1" ] || { echo "no fingerprint in the cold response" >&2; exit 1; }

# The ring agrees on the key's owner; wait until the owner's store
# actually holds the result (the back-fill is asynchronous), which also
# smoke-tests the /v1/store GET surface.
owner1=$(curl -fsS "${urls[0]}/v1/ring?key=$fp1" | sed -n 's/.*"owners": \[[[:space:]]*"\([^"]*\)".*/\1/p' | head -1)
[ -n "$owner1" ] || owner1=$(curl -fsS "${urls[0]}/v1/ring?key=$fp1" | tr -d ' \n' | sed -n 's/.*"owners":\["\([^"]*\)".*/\1/p')
[ -n "$owner1" ] || { echo "ring lookup returned no owner" >&2; exit 1; }
for i in $(seq 1 100); do
  if curl -fsS "$owner1/v1/store/$fp1" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$owner1/v1/store/$fp1" >/dev/null \
  || { echo "owner $owner1 never received $fp1" >&2; cat "$workdir"/r*.log >&2; exit 1; }

code=$(submit "$workdir/warm1.json" "${urls[1]}" "$spec1")
[ "$code" = 200 ] || { echo "warm submit: HTTP $code" >&2; cat "$workdir/warm1.json" >&2; exit 1; }
grep -q '"cached": true' "$workdir/warm1.json" \
  || { echo "replica 2 missed a result the ring holds" >&2; cat "$workdir/warm1.json" >&2; exit 1; }
cold_exec=$(grep -m1 '"Exec":' "$workdir/cold1.json" | tr -dc '0-9')
warm_exec=$(grep -m1 '"Exec":' "$workdir/warm1.json" | tr -dc '0-9')
[ -n "$cold_exec" ] && [ "$cold_exec" = "$warm_exec" ] \
  || { echo "cross-replica Exec diverged ($warm_exec vs $cold_exec)" >&2; exit 1; }
echo "ring leg 1 OK: cold on replica 1, cached cross-replica hit on replica 2 (owner $owner1)"

# ---- Leg 2: kill a second spec's owner, survivors still answer ----
spec2='{"base":"simos-mipsy","workload":{"name":"snbench.restart","lines":320}}'
code=$(submit "$workdir/cold2.json" "${urls[0]}" "$spec2")
[ "$code" = 200 ] || { echo "cold2 submit: HTTP $code" >&2; cat "$workdir/cold2.json" >&2; exit 1; }
fp2=$(field "$workdir/cold2.json" fingerprint)
owner2=$(curl -fsS "${urls[0]}/v1/ring?key=$fp2" | tr -d ' \n' | sed -n 's/.*"owners":\["\([^"]*\)".*/\1/p')
[ -n "$owner2" ] || { echo "ring lookup for spec2 returned no owner" >&2; exit 1; }
for i in $(seq 1 100); do
  if curl -fsS "$owner2/v1/store/$fp2" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

# Kill the owner's process (not a drain — a crash). disown first so
# bash does not print an asynchronous "Killed" job notification.
for idx in 0 1 2; do
  if [ "${urls[$idx]}" = "$owner2" ]; then
    disown "${pids[$idx]}" 2>/dev/null || true
    kill -KILL "${pids[$idx]}"
  fi
done

# Pick a surviving replica and resubmit: the answer must be 200 with
# the identical result, whether it comes from the computing replica's
# local store, a surviving owner, or a deterministic recompute.
survivor=""
for u in "${urls[@]}"; do
  [ "$u" != "$owner2" ] && [ "$u" != "${urls[0]}" ] && survivor=$u
done
[ -n "$survivor" ] || survivor="${urls[0]}"
code=$(submit "$workdir/dead.json" "$survivor" "$spec2")
[ "$code" = 200 ] || { echo "post-kill submit: HTTP $code" >&2; cat "$workdir/dead.json" >&2; exit 1; }
cold2_exec=$(grep -m1 '"Exec":' "$workdir/cold2.json" | tr -dc '0-9')
dead_exec=$(grep -m1 '"Exec":' "$workdir/dead.json" | tr -dc '0-9')
[ -n "$cold2_exec" ] && [ "$cold2_exec" = "$dead_exec" ] \
  || { echo "post-kill Exec diverged ($dead_exec vs $cold2_exec)" >&2; exit 1; }
echo "ring leg 2 OK: owner $owner2 killed, $survivor still served the identical result"

# Survivors drain cleanly.
for idx in 0 1 2; do
  [ "${urls[$idx]}" = "$owner2" ] && continue
  kill -TERM "${pids[$idx]}"
  wait "${pids[$idx]}" || { echo "replica ${urls[$idx]} exited nonzero on SIGTERM" >&2; cat "$workdir/r$((idx+1)).log" >&2; exit 1; }
done

echo "ring smoke OK: 3-replica ring routed, cached cross-replica, and survived an owner kill"
