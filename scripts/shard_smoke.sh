#!/usr/bin/env bash
# End-to-end smoke of intra-run sharded execution: a sharded flashsim
# run must print the same simulation report as the serial run (only the
# wall-clock line may differ), and a flashd job carrying "shards": 4
# must produce a result the unsharded resubmission finds in the warm
# cache — shard count is an execution knob, never part of the memo key.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

# CLI leg: serial vs -shards 4, reports bit-identical modulo wall time.
go build -o "$workdir/flashsim" ./cmd/flashsim
"$workdir/flashsim" -app fft -procs 4 -full=false | grep -v 'wall' >"$workdir/serial.txt"
"$workdir/flashsim" -app fft -procs 4 -full=false -shards 4 | grep -v 'wall' >"$workdir/sharded.txt"
if ! diff -u "$workdir/serial.txt" "$workdir/sharded.txt"; then
  echo "sharded flashsim report diverged from serial" >&2; exit 1
fi
echo "flashsim -shards 4 report identical to serial"

# Daemon leg: cold sharded job, then the serial resubmission must be a
# warm cache hit with the same counters. Port 0 avoids collisions with
# concurrent CI jobs; the resolved address comes from the daemon's log.
go build -o "$workdir/flashd" ./cmd/flashd
"$workdir/flashd" -addr 127.0.0.1:0 -cache-dir "$workdir/cache" \
  >"$workdir/flashd.log" 2>&1 &
pid=$!

addr=""
for i in $(seq 1 100); do
  addr=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$workdir/flashd.log" | head -1)
  [ -n "$addr" ] && break
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "flashd died during startup:" >&2; cat "$workdir/flashd.log" >&2; exit 1
  fi
  sleep 0.1
done
[ -n "$addr" ] || { echo "flashd never logged its address" >&2; cat "$workdir/flashd.log" >&2; exit 1; }
base="http://$addr"

for i in $(seq 1 50); do
  if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "flashd died during startup:" >&2; cat "$workdir/flashd.log" >&2; exit 1
  fi
  sleep 0.2
done

submit() {
  curl -sS -o "$1" -w '%{http_code}' -X POST "$base/v1/runs?wait=true" \
    -H 'Content-Type: application/json' -d "$2"
}

code=$(submit "$workdir/cold.json" \
  '{"base":"simos-mipsy","procs":4,"shards":4,"workload":{"name":"fft","logn":10}}')
[ "$code" = 200 ] || { echo "sharded submit: HTTP $code" >&2; cat "$workdir/cold.json" >&2; exit 1; }
grep -q '"state": "done"' "$workdir/cold.json" || { echo "sharded job not done" >&2; exit 1; }
grep -q '"cached": true' "$workdir/cold.json" && { echo "cold sharded run claims cached" >&2; exit 1; }

code=$(submit "$workdir/warm.json" \
  '{"base":"simos-mipsy","procs":4,"workload":{"name":"fft","logn":10}}')
[ "$code" = 200 ] || { echo "serial submit: HTTP $code" >&2; cat "$workdir/warm.json" >&2; exit 1; }
grep -q '"cached": true' "$workdir/warm.json" \
  || { echo "serial resubmission missed the sharded run's memo" >&2; exit 1; }

cold_exec=$(grep -m1 '"Exec":' "$workdir/cold.json" | tr -dc '0-9')
warm_exec=$(grep -m1 '"Exec":' "$workdir/warm.json" | tr -dc '0-9')
if [ -z "$cold_exec" ] || [ "$cold_exec" != "$warm_exec" ]; then
  echo "cached Exec ($warm_exec) != sharded Exec ($cold_exec)" >&2; exit 1
fi

kill -TERM "$pid"
wait "$pid" || { echo "flashd exited nonzero on SIGTERM" >&2; cat "$workdir/flashd.log" >&2; exit 1; }

echo "shard smoke OK: sharded CLI identical, sharded job cached for serial resubmission"
