#!/usr/bin/env bash
# End-to-end smoke of the serving loop: boot flashd, submit one snbench
# run over HTTP, resubmit it to hit the warm cache, capture a workload
# into the trace store and replay it by fingerprint, then SIGTERM the
# daemon and require a clean drain. CI runs this after the unit tests;
# it needs only curl and a Go toolchain.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

# Port 0 lets the kernel pick a free port; the daemon logs the resolved
# address, which we parse instead of hard-coding one (parallel CI jobs
# on one host must not collide).
go build -o "$workdir/flashd" ./cmd/flashd
"$workdir/flashd" -addr 127.0.0.1:0 -cache-dir "$workdir/cache" -cache-max-bytes 64MiB \
  -trace-dir "$workdir/traces" \
  -metrics-out "$workdir/metrics.json" >"$workdir/flashd.log" 2>&1 &
pid=$!

addr=""
for i in $(seq 1 100); do
  addr=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$workdir/flashd.log" | head -1)
  [ -n "$addr" ] && break
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "flashd died during startup:" >&2; cat "$workdir/flashd.log" >&2; exit 1
  fi
  sleep 0.1
done
[ -n "$addr" ] || { echo "flashd never logged its address" >&2; cat "$workdir/flashd.log" >&2; exit 1; }
base="http://$addr"

for i in $(seq 1 50); do
  if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "flashd died during startup:" >&2; cat "$workdir/flashd.log" >&2; exit 1
  fi
  sleep 0.2
done
curl -fsS "$base/healthz" | grep -q '"ok"' || { echo "healthz not ok" >&2; exit 1; }

req='{"base":"simos-mipsy","workload":{"name":"snbench.restart","lines":256}}'
submit() {
  curl -sS -o "$1" -w '%{http_code}' -X POST "$base/v1/runs?wait=true" \
    -H 'Content-Type: application/json' -d "$req"
}

code=$(submit "$workdir/cold.json")
[ "$code" = 200 ] || { echo "cold submit: HTTP $code" >&2; cat "$workdir/cold.json" >&2; exit 1; }
grep -q '"state": "done"' "$workdir/cold.json" || { echo "cold job not done" >&2; exit 1; }
grep -q '"cached": true' "$workdir/cold.json" && { echo "cold run claims cached" >&2; exit 1; }

code=$(submit "$workdir/warm.json")
[ "$code" = 200 ] || { echo "warm submit: HTTP $code" >&2; cat "$workdir/warm.json" >&2; exit 1; }
grep -q '"cached": true' "$workdir/warm.json" || { echo "warm run missed the cache" >&2; exit 1; }

# Capture a small FFT into the trace store, then replay it by
# fingerprint; the trace-driven result must match the captured run.
capreq='{"base":"simos-mipsy","procs":2,"workload":{"name":"fft","logn":10}}'
code=$(curl -sS -o "$workdir/capture.json" -w '%{http_code}' -X POST "$base/v1/captures?wait=true" \
  -H 'Content-Type: application/json' -d "$capreq")
[ "$code" = 200 ] || { echo "capture: HTTP $code" >&2; cat "$workdir/capture.json" >&2; exit 1; }
grep -q '"stored": true' "$workdir/capture.json" || { echo "capture not stored" >&2; exit 1; }
fp=$(sed -n 's/.*"trace": "\([0-9a-f]*\)".*/\1/p' "$workdir/capture.json" | head -1)
[ -n "$fp" ] || { echo "capture response has no trace fingerprint" >&2; exit 1; }
ls "$workdir/traces/$fp.fltr" >/dev/null || { echo "no container on disk for $fp" >&2; exit 1; }

code=$(curl -sS -o "$workdir/replay.json" -w '%{http_code}' -X POST "$base/v1/replays?wait=true" \
  -H 'Content-Type: application/json' -d "{\"base\":\"simos-mipsy\",\"trace\":\"$fp\"}")
[ "$code" = 200 ] || { echo "replay: HTTP $code" >&2; cat "$workdir/replay.json" >&2; exit 1; }
cap_exec=$(grep -m1 '"Exec":' "$workdir/capture.json" | tr -dc '0-9')
rep_exec=$(grep -m1 '"Exec":' "$workdir/replay.json" | tr -dc '0-9')
if [ -z "$cap_exec" ] || [ "$cap_exec" != "$rep_exec" ]; then
  echo "replay Exec ($rep_exec) != captured Exec ($cap_exec)" >&2; exit 1
fi

# Two pool executions: the cold run and the replay (the capture runs
# outside the pool by design — a memo hit can't fill a trace).
curl -fsS -o "$workdir/metrics.prom" "$base/metrics"
grep -q '^flashsim_runner_runs_total 2$' "$workdir/metrics.prom" \
  || { echo "/metrics does not show exactly two executions" >&2; exit 1; }

kill -TERM "$pid"
if ! wait "$pid"; then
  echo "flashd exited nonzero on SIGTERM:" >&2; cat "$workdir/flashd.log" >&2; exit 1
fi
grep -q '"Ran": 2' "$workdir/metrics.json" || { echo "-metrics-out not flushed on drain" >&2; exit 1; }

echo "serve smoke OK: cold run simulated, warm run cached, capture stored, replay bit-identical, drained cleanly"
