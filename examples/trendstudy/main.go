// Trend study: do simulators predict *speedup* even when their absolute
// predictions are off? (§3.2.) This example sweeps FFT from 1 to 16
// processors on the hardware reference and on two simulators — the
// out-of-order SimOS-MXS and the in-order SimOS-Mipsy over-driven at
// 300 MHz, whose inflated memory-request rate invents contention the
// hardware never sees (the Figure 5 warning).
package main

import (
	"fmt"
	"log"

	"flashsim/internal/apps"
	"flashsim/internal/core"
	"flashsim/internal/emitter"
)

func main() {
	procs := []int{1, 2, 4, 8, 16}
	w := core.Workload{
		Name: "fft",
		Make: func(p int) emitter.Program {
			return apps.FFT(apps.FFTOpts{LogN: 14, Procs: p, TLBBlocked: true, Prefetch: true})
		},
	}

	ref := core.NewReference(16, true)
	ref.Repeats = 3
	ta := core.NewTrendAnalyzer(ref)

	hw, err := ta.HardwareSpeedup(w, procs)
	if err != nil {
		log.Fatal(err)
	}
	curves := []core.Curve{hw}
	mxs, err := ta.SimSpeedup(core.SimOSMXS(1, true), w, procs)
	if err != nil {
		log.Fatal(err)
	}
	m300, err := ta.SimSpeedup(core.SimOSMipsy(1, 300, true), w, procs)
	if err != nil {
		log.Fatal(err)
	}
	curves = append(curves, mxs, m300)

	fmt.Printf("%-24s", "procs")
	for _, p := range procs {
		fmt.Printf("%8d", p)
	}
	fmt.Println()
	for _, c := range curves {
		fmt.Printf("%-24s", c.Label)
		for _, s := range c.Speedup {
			fmt.Printf("%8.2f", s)
		}
		fmt.Println()
	}
	for _, c := range curves[1:] {
		te := core.CompareTrend(hw, c)
		fmt.Printf("trend error of %-24s max %4.1f%%  mean %4.1f%%\n",
			c.Label, 100*te.MaxErr, 100*te.MeanErr)
	}
}
