// Hotspot sensitivity: how much does the memory-system model matter?
// (§3.3, Figure 7.)
//
// Radix-Sort with data placement disabled homes every page on node 0,
// creating a hotspot at that node's controller. The detailed FlashLite
// model queues requests at the MAGIC protocol processor and predicts the
// damage; the generic NUMA model — which simulates latencies and memory
// contention but "does not model occupancy of the directory controller
// beyond the normal latency path" — misses most of it.
package main

import (
	"fmt"
	"log"

	"flashsim/internal/apps"
	"flashsim/internal/core"
	"flashsim/internal/machine"
)

func run(cfg machine.Config, procs int, unplaced bool) machine.Result {
	cfg.Procs = procs
	res, err := machine.Run(cfg, apps.Radix(apps.RadixOpts{
		Keys: 64 << 10, Radix: 32, Procs: procs, Unplaced: unplaced,
	}))
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	flashlite := core.SimOSMipsy(1, 225, true)
	numa := core.WithNUMA(core.SimOSMipsy(1, 225, true))

	fmt.Println("unplaced Radix-Sort (all data homed on node 0), 16 processors:")
	for _, m := range []struct {
		name string
		cfg  machine.Config
	}{
		{"FlashLite (occupancy modeled)", flashlite},
		{"NUMA (latency only)", numa},
	} {
		base := run(m.cfg, 1, true)
		hot := run(m.cfg, 16, true)
		placed := run(m.cfg, 16, false)
		speedupHot := float64(base.Exec) / float64(hot.Exec)
		speedupPlaced := float64(base.Exec) / float64(placed.Exec)
		fmt.Printf("  %-32s speedup %5.2f (hotspot)  vs %5.2f (placed)\n",
			m.name, speedupHot, speedupPlaced)
	}
	fmt.Println("\nboth models predict that the hotspot hurts; only the occupancy-modeling")
	fmt.Println("one predicts how much — the paper measured NUMA 31% optimistic.")
}
