// Quickstart: run one SPLASH-2 kernel on the simulated FLASH hardware
// and on an architectural simulator, and compare the predictions — the
// smallest possible version of the paper's question: "how well does the
// simulator predict the machine?"
package main

import (
	"fmt"
	"log"

	"flashsim/internal/apps"
	"flashsim/internal/core"
	"flashsim/internal/machine"
)

func main() {
	const procs = 4
	fft := func() (p apps.FFTOpts) {
		return apps.FFTOpts{LogN: 14, Procs: procs, TLBBlocked: true, Prefetch: true}
	}

	// The "hardware": a maximum-fidelity machine measured like real
	// hardware — several seeded runs, averaged.
	ref := core.NewReference(procs, true)
	hw, err := ref.Measure(apps.FFT(fft()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FLASH hardware:    %.3f ms (mean of %d runs, min %.3f, max %.3f)\n",
		hw.MeanSeconds()*1e3, len(hw.Runs),
		float64(hw.Min)/900e6*1e3, float64(hw.Max)/900e6*1e3)

	// A simulator: SimOS-Mipsy at 225 MHz (the 1.5x clock trick that
	// compensates an in-order model for unmodeled ILP).
	sim := core.SimOSMipsy(procs, 225, true)
	res, err := machine.Run(sim, apps.FFT(fft()))
	if err != nil {
		log.Fatal(err)
	}
	rel := float64(res.Exec) / float64(hw.Mean)
	fmt.Printf("%s: %.3f ms  -> relative execution time %.2f\n",
		sim.Name, res.ExecSeconds()*1e3, rel)
	fmt.Println("(1.0 = perfect prediction; below 1.0 the simulator is optimistic)")
}
