// Serveclient: the serving loop end to end in one process — boot the
// flashd server layer on a loopback port, submit a run through the
// typed client, follow its status stream, then resubmit the identical
// request to show the memo cache answering without a second
// simulation. Against a long-lived daemon the client half is all you
// need; point client.New at its address.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"flashsim/internal/param"
	"flashsim/internal/runner"
	"flashsim/internal/serve"
	"flashsim/internal/serve/client"
)

func main() {
	ctx := context.Background()

	// Server half: a memoizing pool behind the HTTP API, on a port the
	// OS picks. flashd is this plus flags and signal handling.
	store, err := runner.NewStore("") // in-memory; give a dir to survive restarts
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.New(serve.Options{Pool: runner.New(0, store)})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	fmt.Printf("serving on http://%s\n\n", ln.Addr())

	// Client half: submit a 4-processor FFT run with one parameter
	// override, exactly what the -sim/-set CLI flags would express.
	c := client.New("http://"+ln.Addr().String(), nil)
	req := serve.RunRequest{
		ConfigSpec: serve.ConfigSpec{
			Base:  "simos-mipsy",
			Procs: 4,
			Set:   []param.Setting{{Path: "cpu.clock_mhz", Value: "225"}},
		},
		Workload: serve.Workload("fft", map[string]any{"logn": 12}),
	}

	st, err := c.SubmitRun(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (fingerprint %.12s…)\n", st.ID, st.Fingerprint)
	final, err := c.Watch(ctx, st.ID, func(s serve.JobStatus) {
		fmt.Printf("  %s: %s\n", s.ID, s.State)
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.RunResult(ctx, final.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold run: %d instructions, %v total ticks (cached=%v)\n\n",
		res.Result.Instructions, res.Result.Total, res.Job.Cached)

	// The identical request again: same fingerprint, answered from the
	// memo store without touching the pool.
	warm, err := c.Run(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm run: %d instructions, %v total ticks (cached=%v)\n",
		warm.Result.Instructions, warm.Result.Total, warm.Job.Cached)
	fmt.Printf("\npool executed %d simulation(s) for 2 requests\n", srv.Pool().Stats().Ran)

	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
}
