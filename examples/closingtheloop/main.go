// Closing the loop: the paper's core methodology as a program.
//
// An untuned simulator mispredicts the hardware's microbenchmark
// latencies (wrong TLB-refill cost, unmodeled secondary-cache interface
// occupancy, design-estimate FlashLite timing). The Calibrator measures
// snbench on the hardware reference, fits the simulator's parameters,
// and the tuned simulator then matches all five dependent-load protocol
// cases of Table 3.
package main

import (
	"fmt"
	"log"

	"flashsim/internal/core"
	"flashsim/internal/proto"
)

func main() {
	ref := core.NewReference(4, true)
	cal := core.NewCalibrator(ref)

	untuned := core.SimOSMXS(4, true)
	fmt.Printf("calibrating %s against the hardware reference...\n\n", untuned.Name)
	c, err := cal.Calibrate(untuned)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("parameter adjustments (the closed loop):")
	for _, a := range c.Report {
		fmt.Printf("  %v\n", a)
	}

	hwLat, err := cal.DependentLoadLatencies()
	if err != nil {
		log.Fatal(err)
	}
	tuned := c.Apply(untuned)

	fmt.Println("\ndependent-load latencies (Table 3):")
	fmt.Printf("  %-22s %8s %16s %16s\n", "protocol case", "hw/ns", "untuned", "tuned")
	for _, pc := range []proto.Case{
		proto.LocalClean, proto.LocalDirtyRemote, proto.RemoteClean,
		proto.RemoteDirtyHome, proto.RemoteDirtyRemote,
	} {
		u, err := core.SimDepLatency(untuned, pc)
		if err != nil {
			log.Fatal(err)
		}
		tn, err := core.SimDepLatency(tuned, pc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %8.0f %8.0f (%.2f) %8.0f (%.2f)\n",
			pc, hwLat[pc], u, u/hwLat[pc], tn, tn/hwLat[pc])
	}
	fmt.Println("\nwithout a hardware reference, none of these errors would be visible.")
}
