// Command snbench runs the microbenchmark suite — dependent loads for
// the five protocol cases, the TLB-miss timer, and the restart-time
// (independent load) test — on the hardware reference and, optionally,
// on one of the study simulators.
//
// Usage:
//
//	snbench                    # hardware reference
//	snbench -sim simos-mipsy   # also simos-mipsy | simos-mxs | solo-mipsy
//	snbench -mhz 225           # simulator clock
//	snbench -tuned             # calibrate the simulator first
//	snbench -sim simos-mipsy -metrics-out m.json  # per-run counter report
package main

import (
	"flag"
	"fmt"
	"log"

	"flashsim/internal/cliutil"
	"flashsim/internal/core"
	"flashsim/internal/machine"
	"flashsim/internal/proto"
	"flashsim/internal/snbench"
)

func main() {
	log.SetFlags(0)
	var (
		simName = flag.String("sim", "", "simulator to compare: simos-mipsy, simos-mxs, solo-mipsy")
		mhz     = flag.Int("mhz", 150, "simulator clock (150, 225, 300)")
		tuned   = flag.Bool("tuned", false, "calibrate the simulator before measuring")
		cf      = cliutil.Register()
	)
	flag.Parse()
	if err := cf.Finish(); err != nil {
		log.Fatal(err)
	}
	if err := cf.ForbidTrace("snbench"); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := cf.Close(); err != nil {
			log.Print(err)
		}
	}()
	// An interrupt flushes the same artifacts before exiting.
	stop := cf.ExitOnSignal()
	defer stop()

	pool, _, err := cf.Pool()
	if err != nil {
		log.Fatal(err)
	}
	defer func() { fmt.Printf("[runner: %s]\n", pool.Stats()) }()

	ref := core.NewReference(4, true)
	ref.Pool = pool
	cal := core.NewCalibrator(ref)
	cal.Pool = pool

	fmt.Println("Dependent loads (ns per load):")
	hwLat, err := cal.DependentLoadLatencies()
	if err != nil {
		log.Fatal(err)
	}
	cases := []proto.Case{
		proto.LocalClean, proto.LocalDirtyRemote, proto.RemoteClean,
		proto.RemoteDirtyHome, proto.RemoteDirtyRemote,
	}

	var simCfg *machine.Config
	switch *simName {
	case "":
	case "simos-mipsy":
		c := core.SimOSMipsy(4, *mhz, true)
		simCfg = &c
	case "simos-mxs":
		c := core.SimOSMXS(4, true)
		simCfg = &c
	case "solo-mipsy":
		c := core.SoloMipsy(4, *mhz, true)
		simCfg = &c
	default:
		log.Fatalf("unknown simulator %q", *simName)
	}
	if simCfg != nil {
		c, err := cf.Apply(*simCfg)
		if err != nil {
			log.Fatal(err)
		}
		simCfg = &c
	}
	if simCfg != nil && *tuned {
		calRes, err := cal.Calibrate(*simCfg)
		if err != nil {
			log.Fatal(err)
		}
		t := calRes.Apply(*simCfg)
		simCfg = &t
		fmt.Println("calibration (parameter diff by registry path):")
		fmt.Print(calRes.RenderDiff())
	}

	for _, pc := range cases {
		fmt.Printf("  %-22s hw %6.0f", pc, hwLat[pc])
		if simCfg != nil {
			simNS, err := cal.SimDepLatency(*simCfg, pc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   %s %6.0f (%.2f)", simCfg.Name, simNS, simNS/hwLat[pc])
		}
		fmt.Println()
	}

	hwMeas, err := ref.MeasureAt(snbench.TLBTimer(0, 0, 0), 1)
	if err != nil {
		log.Fatal(err)
	}
	hwTLB := snbench.TLBHandlerCycles(hwMeas.Runs[0], ref.ConfigAt(1).ClockMHz, 0, 0, 0)
	fmt.Printf("TLB refill: hw %.1f cycles", hwTLB)
	if simCfg != nil {
		simTLB, err := cal.SimTLBCycles(*simCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %s %.1f cycles", simCfg.Name, simTLB)
	}
	fmt.Println()

	restart, err := ref.MeasureAt(snbench.Restart(0), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Restart (independent loads): hw %.0f ns/load\n",
		snbench.ThroughputNSPerLoad(restart.Runs[0], 0))
}
