// Command flashd is the simulation daemon: it keeps one warm runner
// pool (and its memo cache) behind an HTTP API, so repeated
// experiments pay the process start-up and cache population once.
//
//	flashd -addr :8023 -cache-dir /var/cache/flashsim -cache-max-bytes 256MiB
//
// Endpoints (see internal/serve):
//
//	POST   /v1/runs              submit a run ({base, set, workload}); ?wait=true blocks for the result
//	POST   /v1/calibrations      submit a closing-the-loop calibration
//	POST   /v1/figures           submit a paper figure (1-7)
//	POST   /v1/captures          run execution-driven, recording the streams (-trace-dir)
//	POST   /v1/replays           replay a stored capture trace-driven by fingerprint
//	GET    /v1/jobs              list jobs; /v1/jobs/{id} one status
//	GET    /v1/jobs/{id}/result  fetch a finished job's payload
//	GET    /v1/jobs/{id}/events  stream status transitions (SSE)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /metrics              Prometheus exposition
//	GET    /v1/params            the tunable-parameter registry
//	GET    /healthz              liveness ("ok" or "draining")
//
// A full queue answers 429 with Retry-After; SIGINT/SIGTERM drains:
// admissions stop (503), accepted jobs finish, the -metrics-out report
// is flushed, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"flashsim/internal/cliutil"
	"flashsim/internal/runner"
	"flashsim/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("flashd: ")
	cf := cliutil.Register()
	addr := flag.String("addr", ":8023", "listen address")
	queueDepth := flag.Int("queue-depth", 64, "accepted-but-unstarted jobs to hold before rejecting with 429")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to 429 responses")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a shutdown waits for accepted jobs before cancelling them")
	traceDir := flag.String("trace-dir", "", "content-addressed trace store enabling /v1/captures and /v1/replays")
	flag.Parse()
	if err := cf.Finish(); err != nil {
		log.Print(err)
		return 1
	}
	if err := cf.ForbidTrace("flashd"); err != nil {
		log.Print(err)
		return 1
	}
	defer func() {
		if err := cf.Close(); err != nil {
			log.Print(err)
		}
	}()

	pool, store, err := cf.Pool()
	if err != nil {
		log.Print(err)
		return 1
	}
	var traces *runner.TraceStore
	if *traceDir != "" {
		traces, err = runner.NewTraceStore(*traceDir)
		if err != nil {
			log.Print(err)
			return 1
		}
		log.Printf("trace store at %s", traces.Dir())
	}
	s := serve.New(serve.Options{
		Pool:       pool,
		QueueDepth: *queueDepth,
		RetryAfter: *retryAfter,
		Traces:     traces,
	})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	shutdown := make(chan os.Signal, 1)
	stop := cliutil.NotifyShutdown(func(sig os.Signal) { shutdown <- sig })
	defer stop()

	served := make(chan error, 1)
	go func() { served <- hs.ListenAndServe() }()
	if cached := store.MaxBytes(); cached > 0 {
		log.Printf("cache bounded at %d bytes (%d on disk)", cached, store.DiskBytes())
	}
	log.Printf("listening on %s (workers %d, queue depth %d)", *addr, pool.Workers(), *queueDepth)

	select {
	case err := <-served:
		// The listener died on its own; nothing accepted is recoverable.
		log.Print(err)
		return 1
	case sig := <-shutdown:
		log.Printf("%v received; draining (timeout %s)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	drainErr := s.Drain(ctx)
	cancel()
	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
	shutdownErr := hs.Shutdown(ctx)
	cancel()
	log.Printf("drained; %s", pool.Stats())

	if drainErr != nil || (shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed)) {
		if drainErr != nil {
			log.Print(drainErr)
		}
		if shutdownErr != nil {
			log.Print(shutdownErr)
		}
		return 1
	}
	return 0
}
