// Command flashd is the simulation daemon: it keeps one warm runner
// pool (and its memo cache) behind an HTTP API, so repeated
// experiments pay the process start-up and cache population once.
//
//	flashd -addr :8023 -cache-dir /var/cache/flashsim -cache-max-bytes 256MiB
//
// Several flashd replicas form a serving ring: give each the others'
// base URLs with -peers and its own advertised URL with -self, and the
// memo store becomes distributed — results route by consistent hashing
// over the run fingerprint, a miss on the submitting replica is fetched
// (with a hedged second request) from the key's ring owner, and every
// locally computed result is written back to its owners. One replica
// with no -peers is bit-identical to the undistributed daemon.
//
//	flashd -addr 127.0.0.1:8101 -self http://127.0.0.1:8101 \
//	       -peers http://127.0.0.1:8102,http://127.0.0.1:8103
//
// Endpoints (see internal/serve):
//
//	POST   /v1/runs              submit a run ({base, set, workload}); ?wait=true blocks for the result
//	POST   /v1/calibrations      submit a closing-the-loop calibration
//	POST   /v1/figures           submit a paper figure (1-7)
//	POST   /v1/captures          run execution-driven, recording the streams (-trace-dir)
//	POST   /v1/replays           replay a stored capture trace-driven by fingerprint
//	GET    /v1/jobs              list jobs; /v1/jobs/{id} one status
//	GET    /v1/jobs/{id}/result  fetch a finished job's payload
//	GET    /v1/jobs/{id}/events  stream status transitions (SSE)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/store/{fp}        peer store API: fetch one memoized result
//	PUT    /v1/store/{fp}        peer store API: accept a ring back-fill
//	GET    /v1/health            ring health (status + membership view)
//	GET    /v1/ring              ring membership; ?key= resolves owners
//	GET    /metrics              Prometheus exposition
//	GET    /v1/params            the tunable-parameter registry
//	GET    /healthz              liveness ("ok" or "draining")
//
// A full queue answers 429 with Retry-After; SIGINT/SIGTERM drains:
// admissions stop (503), accepted jobs finish, the -metrics-out report
// is flushed, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"flashsim/internal/cliutil"
	"flashsim/internal/runner"
	"flashsim/internal/serve"
	"flashsim/internal/serve/client"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("flashd: ")
	cf := cliutil.Register()
	addr := flag.String("addr", ":8023", "listen address (port 0 picks a free port; the resolved address is logged)")
	queueDepth := flag.Int("queue-depth", 64, "accepted-but-unstarted jobs to hold before rejecting with 429")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to 429 responses")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a shutdown waits for accepted jobs before cancelling them")
	traceDir := flag.String("trace-dir", "", "content-addressed trace store enabling /v1/captures and /v1/replays")
	storeKind := flag.String("store", "lru", "local memo backend: 'lru' (in-process, -cache-dir/-cache-max-bytes) or 'disk' (shared on-disk directory, requires -cache-dir)")
	peers := flag.String("peers", "", "comma-separated base URLs of the other ring replicas (enables the distributed store)")
	self := flag.String("self", "", "this replica's advertised base URL in the ring (required with -peers)")
	replicate := flag.Int("replicate", 1, "ring owners each computed result is written back to")
	hedgeAfter := flag.Duration("hedge-after", 25*time.Millisecond, "minimum wait before the hedged second peer fetch (the effective threshold adapts up to the observed p95)")
	healthEvery := flag.Duration("health-every", 2*time.Second, "period of the ring health poll feeding membership (0 disables)")
	flag.Parse()
	if err := cf.Finish(); err != nil {
		log.Print(err)
		return 1
	}
	if err := cf.ForbidTrace("flashd"); err != nil {
		log.Print(err)
		return 1
	}
	defer func() {
		if err := cf.Close(); err != nil {
			log.Print(err)
		}
	}()

	local, lru, err := buildBackend(*storeKind, cf.CacheDir, int64(cf.CacheMax))
	if err != nil {
		log.Print(err)
		return 1
	}

	// The pool memoizes through the distributed store when a ring is
	// configured, and straight through the local backend otherwise.
	var memo runner.Backend = local
	var dist *runner.DistStore
	if *peers != "" {
		dist, err = buildRing(local, *self, *peers, *replicate, *hedgeAfter, *healthEvery)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer dist.Close()
		memo = dist
		log.Printf("ring of %d replicas (self %s, replicate %d)", len(dist.Ring().Members()), dist.Self(), *replicate)
	}
	pool := cf.PoolWith(memo)

	var traces *runner.TraceStore
	if *traceDir != "" {
		traces, err = runner.NewTraceStore(*traceDir)
		if err != nil {
			log.Print(err)
			return 1
		}
		log.Printf("trace store at %s", traces.Dir())
	}
	s := serve.New(serve.Options{
		Pool:       pool,
		QueueDepth: *queueDepth,
		RetryAfter: *retryAfter,
		Traces:     traces,
		Memo:       local, // peers read our local store, never the ring wrapper
		Dist:       dist,
	})
	// Listen before serving so the resolved address — not the flag,
	// which may carry port 0 — is what gets logged; the smoke scripts
	// parse this line to find the daemon.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	hs := &http.Server{Handler: s.Handler()}

	shutdown := make(chan os.Signal, 1)
	stop := cliutil.NotifyShutdown(func(sig os.Signal) { shutdown <- sig })
	defer stop()

	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()
	if lru != nil {
		if cached := lru.MaxBytes(); cached > 0 {
			log.Printf("cache bounded at %d bytes (%d on disk)", cached, lru.DiskBytes())
		}
	}
	log.Printf("listening on %s (workers %d, queue depth %d)", ln.Addr(), pool.Workers(), *queueDepth)

	select {
	case err := <-served:
		// The listener died on its own; nothing accepted is recoverable.
		log.Print(err)
		return 1
	case sig := <-shutdown:
		log.Printf("%v received; draining (timeout %s)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	drainErr := s.Drain(ctx)
	cancel()
	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
	shutdownErr := hs.Shutdown(ctx)
	cancel()
	log.Printf("drained; %s", pool.Stats())

	if drainErr != nil || (shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed)) {
		if drainErr != nil {
			log.Print(drainErr)
		}
		if shutdownErr != nil {
			log.Print(shutdownErr)
		}
		return 1
	}
	return 0
}

// buildBackend assembles the local memo backend -store names. The
// second return is non-nil only for the LRU store (it carries the
// bounded-cache bookkeeping the startup log reports).
func buildBackend(kind, cacheDir string, cacheMax int64) (runner.Backend, *runner.Store, error) {
	switch kind {
	case "lru":
		store, err := runner.NewBoundedStore(cacheDir, cacheMax)
		if err != nil {
			return nil, nil, fmt.Errorf("cache: %w", err)
		}
		return store, store, nil
	case "disk":
		if cacheDir == "" {
			return nil, nil, fmt.Errorf("-store disk requires -cache-dir (the shared directory)")
		}
		db, err := runner.NewDiskBackend(cacheDir)
		if err != nil {
			return nil, nil, fmt.Errorf("cache: %w", err)
		}
		return db, nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown -store %q (want lru or disk)", kind)
	}
}

// buildRing assembles the distributed store over the local backend and
// the -peers list.
func buildRing(local runner.Backend, self, peerList string, replicate int, hedgeAfter, healthEvery time.Duration) (*runner.DistStore, error) {
	if self == "" {
		return nil, fmt.Errorf("-peers requires -self (this replica's advertised base URL)")
	}
	self = strings.TrimRight(self, "/")
	var peers []runner.PeerStore
	for _, raw := range strings.Split(peerList, ",") {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			continue
		}
		if u == self {
			return nil, fmt.Errorf("-peers contains -self (%s); list only the other replicas", self)
		}
		if !strings.Contains(u, "://") {
			return nil, fmt.Errorf("-peers entry %q is not a base URL (want e.g. http://host:port)", raw)
		}
		peers = append(peers, client.NewStoreClient(u, nil))
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers given but no usable entries in %q", peerList)
	}
	return runner.NewDistStore(runner.DistOptions{
		Self:        self,
		Local:       local,
		Peers:       peers,
		Replicate:   replicate,
		HedgeFloor:  hedgeAfter,
		HealthEvery: healthEvery,
	}), nil
}
