// Command validate reproduces the paper's evaluation: Tables 1-3,
// Figures 1-4, and the in-text experiments. Speedup figures (5-7) live
// in cmd/speedup.
//
// Usage:
//
//	validate -all            # every table, figure, and experiment
//	validate -table 3        # one table
//	validate -figure 2       # one figure
//	validate -experiment tlb # tlb | blocking | muldiv | defects | trace | sampling
//	validate -quick          # reduced problem sizes
//	validate -all -jobs 8 -cache-dir .flashcache
//	validate -experiment tlb -set os.tlb.handler_cycles=65   # the X1 fix as an override
//	validate -experiment tlb -metrics-out m.json             # per-run counter report
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flashsim/internal/cliutil"
	"flashsim/internal/harness"
)

func main() {
	log.SetFlags(0)
	var (
		all        = flag.Bool("all", false, "run every table, figure, and experiment")
		table      = flag.Int("table", 0, "render table 1, 2, or 3")
		figure     = flag.Int("figure", 0, "run figure 1-4")
		experiment = flag.String("experiment", "", "run an in-text experiment: tlb, blocking, muldiv, defects, trace, sampling")
		quick      = flag.Bool("quick", false, "use reduced problem sizes")
		tuning     = flag.Bool("tuning", false, "print each simulator's calibration as a registry diff")
		cf         = cliutil.Register()
	)
	flag.Parse()
	if err := cf.Finish(); err != nil {
		log.Fatal(err)
	}
	if err := cf.ForbidTrace("validate"); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := cf.Close(); err != nil {
			log.Print(err)
		}
	}()
	// An interrupt flushes the same artifacts before exiting.
	stop := cf.ExitOnSignal()
	defer stop()

	scale := harness.ScaleFull
	if *quick {
		scale = harness.ScaleQuick
	}
	pool, _, err := cf.Pool()
	if err != nil {
		log.Fatal(err)
	}
	s := harness.NewSessionWithPool(scale, pool)
	s.Override = cf.Apply
	defer func() { fmt.Printf("[runner: %s]\n", pool.Stats()) }()

	ran := false
	timed := func(name string, f func() (string, error)) {
		ran = true
		t0 := time.Now()
		text, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(text)
		fmt.Printf("[%s took %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	if *all || *table == 1 {
		ran = true
		fmt.Println(harness.Table1())
	}
	if *all || *table == 2 {
		ran = true
		fmt.Println(harness.Table2(scale))
	}
	if *all || *table == 3 {
		timed("table 3", func() (string, error) { _, t, err := s.Table3(); return t, err })
	}
	if *all || *figure == 1 {
		timed("figure 1", func() (string, error) { _, t, err := s.Figure1(); return t, err })
	}
	if *all || *figure == 2 {
		timed("figure 2", func() (string, error) { _, t, err := s.Figure2(); return t, err })
	}
	if *all || *figure == 3 {
		// Figure 3 is the tuned comparison; show what the tuning
		// actually changed, as registry diffs.
		timed("tuning diffs", func() (string, error) { return s.TuningDiffs(1) })
		timed("figure 3", func() (string, error) { _, t, err := s.Figure3(); return t, err })
	} else if *tuning {
		timed("tuning diffs", func() (string, error) { return s.TuningDiffs(1) })
	}
	if *all || *figure == 4 {
		timed("figure 4", func() (string, error) { _, t, err := s.Figure4(); return t, err })
	}
	if *all || *experiment == "tlb" {
		timed("experiment tlb", func() (string, error) { _, t, err := s.ExperimentTLBCost(); return t, err })
	}
	if *all || *experiment == "blocking" {
		timed("experiment blocking", func() (string, error) { _, t, err := s.ExperimentBlockingFixes(); return t, err })
	}
	if *all || *experiment == "muldiv" {
		timed("experiment muldiv", func() (string, error) { _, t, err := s.ExperimentMulDiv(); return t, err })
	}
	if *all || *experiment == "defects" {
		timed("experiment defects", func() (string, error) { return s.ExperimentDefects() })
	}
	if *all || *experiment == "trace" {
		timed("experiment trace", func() (string, error) { _, t, err := s.ExperimentTraceReplay(4); return t, err })
	}
	if *all || *experiment == "sampling" {
		timed("experiment sampling", func() (string, error) { _, t, err := s.ExperimentSampling(2, 4); return t, err })
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
