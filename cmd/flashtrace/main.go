// Command flashtrace is the trace-capture tool chain: capture a
// workload's instruction streams into a container, inspect and verify
// containers, replay them trace-driven, and sweep memory-system
// parameters over one capture (decode once, replay many) against the
// execution-driven baseline.
//
// Usage:
//
//	flashtrace capture -app fft -procs 4 -o fft.fltr
//	flashtrace capture -app radix -store traces/   # content-addressed
//	flashtrace inspect fft.fltr
//	flashtrace replay -sim simos-mipsy -procs 4 fft.fltr
//	flashtrace sweep -app fft -procs 4 -points 24 -json sweep.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"flashsim/internal/cliutil"
	"flashsim/internal/core"
	"flashsim/internal/emitter"
	"flashsim/internal/hw"
	"flashsim/internal/machine"
	"flashsim/internal/param"
	"flashsim/internal/runner"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "capture":
		err = capture(os.Args[2:])
	case "inspect":
		err = inspect(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	case "sweep":
		err = sweep(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		usage()
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `flashtrace <capture|inspect|replay|sweep> [flags]
  capture   run a workload execution-driven and record its streams
  inspect   print a container's metadata, layout, and integrity status
  replay    run a captured trace trace-driven on a chosen machine
  sweep     replay one capture across a memory-system parameter grid
            and compare against execution-driven runs across the
            CPU-detail ladder`)
}

// workFlags is the workload/config flag block shared by capture and
// sweep (the subcommands that build an execution-driven run). The
// workload itself comes from the registry via the shared -app/-p
// selection flags.
type workFlags struct {
	wf      *cliutil.WorkloadFlags
	procs   *int
	simName *string
	mhz     *int
	seed    *uint64
}

func addWorkFlags(fs *flag.FlagSet) *workFlags {
	return &workFlags{
		wf:      cliutil.RegisterWorkloadOn(fs),
		procs:   fs.Int("procs", 1, "processor count"),
		simName: fs.String("sim", "simos-mipsy", "hw, simos-mipsy, simos-mxs, solo-mipsy"),
		mhz:     fs.Int("mhz", 150, "Mipsy clock (150, 225, 300)"),
		seed:    fs.Uint64("seed", 1, "jitter/branch seed"),
	}
}

// simConfig builds a simulator configuration by name (shared with
// replay, which has no workload flags).
func simConfig(cf *cliutil.Flags, simName string, procs, mhz int, seed uint64) (machine.Config, error) {
	var cfg machine.Config
	switch simName {
	case "hw":
		cfg = hw.Config(procs, true)
	case "simos-mipsy":
		cfg = core.SimOSMipsy(procs, mhz, true)
	case "simos-mxs":
		cfg = core.SimOSMXS(procs, true)
	case "solo-mipsy":
		cfg = core.SoloMipsy(procs, mhz, true)
	default:
		return cfg, fmt.Errorf("unknown simulator %q", simName)
	}
	cfg.Seed = seed
	return cf.Apply(cfg)
}

func (w *workFlags) build(cf *cliutil.Flags) (machine.Config, emitter.Program, json.RawMessage, error) {
	cfg, err := simConfig(cf, *w.simName, *w.procs, *w.mhz, *w.seed)
	if err != nil {
		return machine.Config{}, emitter.Program{}, nil, err
	}
	prog, spec, err := w.wf.Program(*w.procs)
	if err != nil {
		return machine.Config{}, emitter.Program{}, nil, err
	}
	source, err := json.Marshal(struct {
		Workload json.RawMessage `json:"workload"`
		Sim      string          `json:"sim"`
		MHz      int             `json:"mhz"`
		Procs    int             `json:"procs"`
	}{spec, *w.simName, *w.mhz, *w.procs})
	if err != nil {
		return machine.Config{}, emitter.Program{}, nil, err
	}
	return cfg, prog, source, nil
}

func capture(args []string) error {
	fs := flag.NewFlagSet("flashtrace capture", flag.ExitOnError)
	w := addWorkFlags(fs)
	out := fs.String("o", "", "output container path (default <app>.fltr)")
	storeDir := fs.String("store", "", "save into this content-addressed trace store instead of -o")
	cf := cliutil.RegisterOn(fs)
	fs.Parse(args)
	if err := w.wf.Finish(); err != nil {
		return err
	}
	if err := cf.Finish(); err != nil {
		return err
	}
	defer cf.Close()

	cfg, prog, source, err := w.build(cf)
	if err != nil {
		return err
	}

	if *storeDir != "" {
		ts, err := runner.NewTraceStore(*storeDir)
		if err != nil {
			return err
		}
		fp := runner.TraceFingerprint(cfg, prog)
		if ts.Has(fp) {
			fmt.Printf("already captured: %s\n", ts.Path(fp))
			return nil
		}
		t0 := time.Now()
		var res machine.Result
		stored, err := ts.Save(fp, func(wr io.Writer) error {
			tw, err := trace.NewWriter(wr, runner.TraceMeta(cfg, prog, source))
			if err != nil {
				return err
			}
			res, err = machine.RunCapture(cfg, prog, tw)
			return err
		})
		if err != nil {
			return err
		}
		if !stored {
			fmt.Printf("already captured: %s\n", ts.Path(fp))
			return nil
		}
		fmt.Printf("captured %s (%d instructions, %.3f ms simulated) in %v\n",
			prog.FullName(), res.Instructions, res.ExecSeconds()*1e3, time.Since(t0).Round(time.Millisecond))
		fmt.Printf("stored: %s\n", ts.Path(fp))
		return nil
	}

	path := *out
	if path == "" {
		path = w.wf.App + ".fltr"
	}
	// Route through the shared run-mode dispatch (the capture branch of
	// ExecuteRun is exactly this subcommand's job).
	cf.TraceOut = path
	t0 := time.Now()
	ro, err := cf.ExecuteRun(context.Background(), nil, cfg, prog, source, nil)
	if err != nil {
		return err
	}
	res := ro.Result
	st, _ := os.Stat(path)
	fmt.Printf("captured %s (%d instructions, %.3f ms simulated) in %v\n",
		prog.FullName(), res.Instructions, res.ExecSeconds()*1e3, time.Since(t0).Round(time.Millisecond))
	if st != nil {
		fmt.Printf("wrote %s (%d bytes, %.2f bits/instr)\n",
			path, st.Size(), 8*float64(st.Size())/float64(res.Instructions))
	}
	return nil
}

func inspect(args []string) error {
	fs := flag.NewFlagSet("flashtrace inspect", flag.ExitOnError)
	verify := fs.Bool("verify", true, "fully decode every stream (CRCs, codec, counts)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: flashtrace inspect [-verify=false] <container.fltr>")
	}
	path := fs.Arg(0)
	tr, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	st, _ := os.Stat(path)
	m := tr.Meta()
	fmt.Printf("container:    %s (format v%d)\n", path, trace.FormatVersion)
	fmt.Printf("workload:     %s, %d thread(s)\n", m.Workload, m.Threads)
	if m.Artifact != "" {
		fmt.Printf("artifact:     %s\n", m.Artifact)
	}
	if m.Fingerprint != "" {
		fmt.Printf("capture run:  %s\n", m.Fingerprint)
	}
	fmt.Printf("instructions: %d total", tr.Instructions())
	for i := 0; i < tr.Threads(); i++ {
		if i == 0 {
			fmt.Printf(" (")
		} else {
			fmt.Printf(", ")
		}
		fmt.Printf("t%d=%d", i, tr.ThreadInstructions(i))
	}
	fmt.Printf(")\n")
	fmt.Printf("chunks:       %d (%d batches recorded)\n", tr.Chunks(), tr.Batches())
	if st != nil && tr.Instructions() > 0 {
		fmt.Printf("size:         %d bytes, %.2f bits/instr\n",
			st.Size(), 8*float64(st.Size())/float64(tr.Instructions()))
	}
	l := tr.Layout()
	fmt.Printf("address span: %#x, %d region(s)\n", l.Span, len(l.Regions))
	for _, r := range l.Regions {
		fmt.Printf("  %-16s base=%#010x size=%-10d place{kind=%d node=%d stride=%d}\n",
			r.Name, r.Base, r.Size, r.PlaceKind, r.PlaceNode, r.PlaceStride)
	}
	if len(m.Source) > 0 {
		fmt.Printf("source spec:  %s\n", m.Source)
	}
	if *verify {
		n, err := tr.Verify()
		if err != nil {
			return fmt.Errorf("verify FAILED after %d instructions: %w", n, err)
		}
		fmt.Printf("verify:       OK (%d instructions decoded)\n", n)
	}
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("flashtrace replay", flag.ExitOnError)
	simName := fs.String("sim", "simos-mipsy", "hw, simos-mipsy, simos-mxs, solo-mipsy")
	mhz := fs.Int("mhz", 150, "Mipsy clock (150, 225, 300)")
	seed := fs.Uint64("seed", 1, "jitter seed")
	cf := cliutil.RegisterOn(fs)
	fs.Parse(args)
	if err := cf.Finish(); err != nil {
		return err
	}
	defer cf.Close()
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: flashtrace replay [flags] <container.fltr>")
	}
	img, err := cliutil.LoadReplay(fs.Arg(0))
	if err != nil {
		return err
	}
	procs := img.Threads()
	cfg, err := simConfig(cf, *simName, procs, *mhz, *seed)
	if err != nil {
		return err
	}
	pool, _, err := cf.Pool()
	if err != nil {
		return err
	}
	t0 := time.Now()
	ro, err := cf.ExecuteRun(context.Background(), pool, cfg, emitter.Program{}, nil, img)
	if err != nil {
		return err
	}
	res := ro.Result
	wall := time.Since(t0)
	fmt.Printf("%s (trace-driven) on %s, %d processor(s)\n", img.Workload(), cfg.Name, procs)
	fmt.Printf("  parallel section: %.3f ms simulated\n", res.ExecSeconds()*1e3)
	fmt.Printf("  total:            %.3f ms simulated (%v wall, %.1fM instr/s)\n",
		float64(res.Total)/sim.TickHz*1e3, wall.Round(time.Millisecond),
		float64(res.Instructions)/wall.Seconds()/1e6)
	fmt.Printf("  instructions:     %d\n", res.Instructions)
	fmt.Printf("  L2 miss rate:     %.2f%%\n", 100*res.L2MissRate())
	fmt.Printf("  TLB misses:       %d\n", res.TLBMisses)
	if res.Sampled {
		s := res.Sampling
		fmt.Printf("  sampling:         %d windows; %d detailed + %d functional instrs\n",
			s.Windows, s.DetailedInstrs, s.FunctionalInstrs)
	}
	return nil
}

// sweepReport is the committed JSON evidence of the replay-sweep
// acceptance criterion: N memory-system points, replay vs. execution
// wall-clock, and the per-point agreement.
//
// The execution-driven side of a memory-system study is not one run
// per point: because execution-driven results depend on the core
// model, the study (like the paper's) runs every point at each rung of
// the CPU-detail ladder — classic Mipsy, Mipsy with functional-unit
// latencies, and MXS. A trace replays core-model-free, so the
// trace-driven side is ONE replay per point, with the per-rung
// deviation reported as the trace-driven error. Both framings of the
// win are recorded: SpeedupX (vs. the full ladder) and
// SingleRungSpeedupX (vs. one classic-Mipsy run per point), plus
// WithCaptureSpeedupX, which charges the one-time capture cost to this
// sweep instead of amortizing it across future sweeps of the stored
// artifact.
type sweepReport struct {
	Workload     string    `json:"workload"`
	Config       string    `json:"config"`
	Param        string    `json:"param"`
	Values       []float64 `json:"values"`
	Points       int       `json:"points"`
	Instructions uint64    `json:"instructions"`
	Jobs         int       `json:"jobs"`

	// Ladder names the execution-driven core models run at every sweep
	// point; ExecRungMS and RungMaxRelErr align with it.
	Ladder []string `json:"ladder"`

	CaptureMS  float64   `json:"capture_ms"`
	PrepareMS  float64   `json:"prepare_ms"`
	ExecRungMS []float64 `json:"exec_rung_ms"`
	ExecMS     float64   `json:"exec_ms"`
	ReplayMS   float64   `json:"replay_ms"`

	SpeedupX            float64 `json:"speedup_x"`
	SingleRungSpeedupX  float64 `json:"single_rung_speedup_x"`
	WithCaptureSpeedupX float64 `json:"with_capture_speedup_x"`

	// IdenticalPoints counts sweep points where the trace-driven
	// ExecTicks equal the classic-Mipsy execution-driven ones bit for
	// bit (all of them, by construction). RungMaxRelErr is the largest
	// relative ExecTicks deviation of the replay from each ladder rung
	// across points — zero at the classic-Mipsy rung, and the
	// trace-driven error (an Omission row of the taxonomy) at the
	// detailed rungs.
	IdenticalPoints int       `json:"identical_points"`
	RungMaxRelErr   []float64 `json:"rung_max_rel_err"`
}

func sweep(args []string) error {
	fs := flag.NewFlagSet("flashtrace sweep", flag.ExitOnError)
	w := addWorkFlags(fs)
	points := fs.Int("points", 24, "sweep point count")
	path := fs.String("param", "flash.inbox_ns", "memory-system parameter to sweep")
	minV := fs.Float64("min", 10, "lowest parameter value")
	maxV := fs.Float64("max", 125, "highest parameter value")
	ladder := fs.Bool("ladder", true, "run the execution-driven side at every CPU-detail rung (mipsy, mipsy+lat, mxs) per point")
	jsonOut := fs.String("json", "", "write the sweep report as JSON to this file")
	cf := cliutil.RegisterOn(fs)
	fs.Parse(args)
	if err := w.wf.Finish(); err != nil {
		return err
	}
	if err := cf.Finish(); err != nil {
		return err
	}
	defer cf.Close()
	if *points < 2 {
		return fmt.Errorf("-points must be at least 2")
	}

	cfg, prog, source, err := w.build(cf)
	if err != nil {
		return err
	}

	// The sweep grid: -points values of -param, linearly spaced.
	cfgs := make([]machine.Config, *points)
	values := make([]float64, *points)
	for i := range cfgs {
		v := *minV + (*maxV-*minV)*float64(i)/float64(*points-1)
		s, err := param.ParseSetting(fmt.Sprintf("%s=%g", *path, v))
		if err != nil {
			return err
		}
		c, err := param.ApplySettings(cfg, []param.Setting{s})
		if err != nil {
			return err
		}
		c.Name = fmt.Sprintf("%s %s=%g", cfg.Name, *path, v)
		cfgs[i] = c
		values[i] = v
	}

	// Capture once (this is itself one execution-driven run).
	fmt.Printf("capturing %s on %s...\n", prog.FullName(), cfg.Name)
	var buf memBuffer
	tw, err := trace.NewWriter(&buf, runner.TraceMeta(cfg, prog, source))
	if err != nil {
		return err
	}
	t0 := time.Now()
	if _, err := machine.RunCapture(cfg, prog, tw); err != nil {
		return err
	}
	captureWall := time.Since(t0)

	// Prepare once; every replay shares the image.
	t0 = time.Now()
	tr, err := trace.Decode(buf.data)
	if err != nil {
		return err
	}
	img, err := machine.PrepareReplay(tr)
	if err != nil {
		return err
	}
	prepareWall := time.Since(t0)

	// The execution-driven side: every sweep point at every rung of the
	// CPU-detail ladder (exec results are core-model-dependent, so a
	// study needs all rungs); the trace-driven side: one replay per
	// point. Both run through identical pools (same worker count, no
	// memo store — the comparison is simulation cost, not cache hits).
	rungs := []struct {
		name string
		mut  func(machine.Config) machine.Config
	}{
		{"mipsy", func(c machine.Config) machine.Config { return c }},
		{"mipsy+lat", func(c machine.Config) machine.Config {
			c.ModelInstrLatency = true
			c.Name += " +lat"
			return c
		}},
		{"mxs", func(c machine.Config) machine.Config {
			// Mirrors core.SimOSMXS: the out-of-order core at the
			// hardware clock with MXS's untuned TLB handler cost.
			c.CPU = machine.CPUMXS
			c.ClockMHz = 150
			c.OS.TLBHandlerCycles = core.UntunedMXSTLBCycles
			c.ModelInstrLatency = false
			c.Name += " MXS"
			return c
		}},
	}
	if !*ladder {
		rungs = rungs[:1]
	}

	replayJobs := make([]runner.Job, *points)
	for i := range cfgs {
		replayJobs[i] = runner.Job{Config: cfgs[i], Replay: img}
	}
	ctx := context.Background()

	fmt.Printf("replaying %d points (%d workers)...\n", *points, cf.Jobs)
	t0 = time.Now()
	replayRes, err := runner.New(cf.Jobs, nil).Run(ctx, replayJobs)
	if err != nil {
		return err
	}
	replayWall := time.Since(t0)

	rep := sweepReport{
		Workload:      prog.FullName(),
		Config:        cfg.Name,
		Param:         *path,
		Values:        values,
		Points:        *points,
		Instructions:  img.Instructions(),
		Jobs:          cf.Jobs,
		CaptureMS:     float64(captureWall.Microseconds()) / 1e3,
		PrepareMS:     float64(prepareWall.Microseconds()) / 1e3,
		ReplayMS:      float64(replayWall.Microseconds()) / 1e3,
		RungMaxRelErr: make([]float64, len(rungs)),
	}

	for r, rung := range rungs {
		execJobs := make([]runner.Job, *points)
		for i := range cfgs {
			execJobs[i] = runner.Job{Config: rung.mut(cfgs[i]), Prog: prog}
		}
		fmt.Printf("executing %d points at rung %q (%d workers)...\n", *points, rung.name, cf.Jobs)
		t0 = time.Now()
		execRes, err := runner.New(cf.Jobs, nil).Run(ctx, execJobs)
		if err != nil {
			return err
		}
		rungMS := float64(time.Since(t0).Microseconds()) / 1e3
		rep.Ladder = append(rep.Ladder, rung.name)
		rep.ExecRungMS = append(rep.ExecRungMS, rungMS)
		rep.ExecMS += rungMS
		for i := range execRes {
			e, rr := float64(execRes[i].Exec), float64(replayRes[i].Exec)
			if r == 0 && execRes[i].Exec == replayRes[i].Exec {
				rep.IdenticalPoints++
			}
			if e > 0 {
				if rel := abs(rr-e) / e; rel > rep.RungMaxRelErr[r] {
					rep.RungMaxRelErr[r] = rel
				}
			}
		}
	}

	traceMS := rep.PrepareMS + rep.ReplayMS
	rep.SpeedupX = rep.ExecMS / traceMS
	rep.SingleRungSpeedupX = rep.ExecRungMS[0] / traceMS
	rep.WithCaptureSpeedupX = rep.ExecMS / (rep.CaptureMS + traceMS)

	fmt.Printf("\n%s: %d-point sweep of %s over [%g, %g]\n", rep.Workload, rep.Points, rep.Param, *minV, *maxV)
	fmt.Printf("  capture (once):     %8.1f ms\n", rep.CaptureMS)
	fmt.Printf("  prepare (once):     %8.1f ms\n", rep.PrepareMS)
	for r, name := range rep.Ladder {
		fmt.Printf("  exec rung %-9s %8.1f ms (max rel. ExecTicks err vs. replay %.3g)\n",
			name+":", rep.ExecRungMS[r], rep.RungMaxRelErr[r])
	}
	fmt.Printf("  execution-driven:   %8.1f ms (%d rung(s)/point)\n", rep.ExecMS, len(rep.Ladder))
	fmt.Printf("  trace-driven:       %8.1f ms (prepare + replays)\n", traceMS)
	fmt.Printf("  sweep speedup:      %8.2fx vs. the ladder (%.2fx vs. one mipsy run/point, %.2fx charging capture here)\n",
		rep.SpeedupX, rep.SingleRungSpeedupX, rep.WithCaptureSpeedupX)
	fmt.Printf("  identical points:   %d/%d at the classic-Mipsy rung\n",
		rep.IdenticalPoints, rep.Points)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// memBuffer is a minimal in-memory io.Writer for one capture.
type memBuffer struct{ data []byte }

func (b *memBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}
