// Command speedup reproduces the trend studies: Figure 5 (FFT), Figure
// 6 (Radix-Sort), and Figure 7 (unplaced Radix-Sort across memory-system
// models).
//
// Usage:
//
//	speedup -figure 5
//	speedup -figure 6
//	speedup -figure 7
//	speedup -all [-quick] [-jobs 8] [-cache-dir .flashcache]
//	speedup -figure 5 -metrics-out m.json  # per-run counter report
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"flashsim/internal/cliutil"
	"flashsim/internal/harness"
	"flashsim/internal/machine"
	"flashsim/internal/runner"
)

func main() {
	log.SetFlags(0)
	var (
		all         = flag.Bool("all", false, "run figures 5, 6, and 7")
		figure      = flag.Int("figure", 0, "run figure 5, 6, or 7")
		quick       = flag.Bool("quick", false, "use reduced problem sizes")
		shardsCurve = flag.Bool("shards-curve", false, "measure the quick Figure 5 wall clock at 1/2/4/8 intra-run shards (results are bit-identical; only host time moves)")
		cf          = cliutil.Register()
	)
	flag.Parse()
	if err := cf.Finish(); err != nil {
		log.Fatal(err)
	}
	if err := cf.ForbidTrace("speedup"); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := cf.Close(); err != nil {
			log.Print(err)
		}
	}()
	// An interrupt flushes the same artifacts before exiting.
	stop := cf.ExitOnSignal()
	defer stop()

	scale := harness.ScaleFull
	if *quick {
		scale = harness.ScaleQuick
	}
	pool, _, err := cf.Pool()
	if err != nil {
		log.Fatal(err)
	}
	s := harness.NewSessionWithPool(scale, pool)
	s.Override = cf.Apply
	defer func() { fmt.Printf("[runner: %s]\n", pool.Stats()) }()

	ran := false
	runFig := func(n int, f func() (string, error)) {
		ran = true
		t0 := time.Now()
		text, err := f()
		if err != nil {
			log.Fatalf("figure %d: %v", n, err)
		}
		fmt.Println(text)
		fmt.Printf("[figure %d took %v]\n\n", n, time.Since(t0).Round(time.Millisecond))
	}
	if *all || *figure == 5 {
		runFig(5, func() (string, error) { _, t, err := s.Figure5(); return t, err })
	}
	if *all || *figure == 6 {
		runFig(6, func() (string, error) { _, t, err := s.Figure6(); return t, err })
	}
	if *all || *figure == 7 {
		runFig(7, func() (string, error) { _, t, err := s.Figure7(); return t, err })
	}
	if *shardsCurve {
		ran = true
		runShardsCurve(cf)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// runShardsCurve times the quick Figure 5 at each shard rung. Every
// rung uses a fresh one-worker pool with no memo store, so intra-run
// sharding is the only parallelism and nothing is served from cache —
// the row is a pure wall-clock speedup curve over identical results.
func runShardsCurve(cf *cliutil.Flags) {
	fmt.Printf("Intra-run shard scaling, quick Figure 5 (host: %d CPUs, GOMAXPROCS %d):\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	var base time.Duration
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		s := harness.NewSessionWithPool(harness.ScaleQuick, runner.New(1, nil))
		s.Override = func(cfg machine.Config) (machine.Config, error) {
			cfg, err := cf.Apply(cfg)
			if err != nil {
				return cfg, err
			}
			cfg.Shards = n
			return cfg, nil
		}
		t0 := time.Now()
		if _, _, err := s.Figure5(); err != nil {
			log.Fatalf("shards=%d: %v", n, err)
		}
		d := time.Since(t0)
		if n == 1 {
			base = d
		}
		fmt.Printf("  shards=%d  %10v  speedup %.2fx\n", n, d.Round(time.Millisecond), base.Seconds()/d.Seconds())
	}
}
