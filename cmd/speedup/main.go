// Command speedup reproduces the trend studies: Figure 5 (FFT), Figure
// 6 (Radix-Sort), and Figure 7 (unplaced Radix-Sort across memory-system
// models).
//
// Usage:
//
//	speedup -figure 5
//	speedup -figure 6
//	speedup -figure 7
//	speedup -all [-quick] [-jobs 8] [-cache-dir .flashcache]
//	speedup -figure 5 -metrics-out m.json  # per-run counter report
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flashsim/internal/cliutil"
	"flashsim/internal/harness"
)

func main() {
	log.SetFlags(0)
	var (
		all    = flag.Bool("all", false, "run figures 5, 6, and 7")
		figure = flag.Int("figure", 0, "run figure 5, 6, or 7")
		quick  = flag.Bool("quick", false, "use reduced problem sizes")
		cf     = cliutil.Register()
	)
	flag.Parse()
	if err := cf.Finish(); err != nil {
		log.Fatal(err)
	}
	if err := cf.ForbidTrace("speedup"); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := cf.Close(); err != nil {
			log.Print(err)
		}
	}()
	// An interrupt flushes the same artifacts before exiting.
	stop := cf.ExitOnSignal()
	defer stop()

	scale := harness.ScaleFull
	if *quick {
		scale = harness.ScaleQuick
	}
	pool, _, err := cf.Pool()
	if err != nil {
		log.Fatal(err)
	}
	s := harness.NewSessionWithPool(scale, pool)
	s.Override = cf.Apply
	defer func() { fmt.Printf("[runner: %s]\n", pool.Stats()) }()

	ran := false
	runFig := func(n int, f func() (string, error)) {
		ran = true
		t0 := time.Now()
		text, err := f()
		if err != nil {
			log.Fatalf("figure %d: %v", n, err)
		}
		fmt.Println(text)
		fmt.Printf("[figure %d took %v]\n\n", n, time.Since(t0).Round(time.Millisecond))
	}
	if *all || *figure == 5 {
		runFig(5, func() (string, error) { _, t, err := s.Figure5(); return t, err })
	}
	if *all || *figure == 6 {
		runFig(6, func() (string, error) { _, t, err := s.Figure6(); return t, err })
	}
	if *all || *figure == 7 {
		runFig(7, func() (string, error) { _, t, err := s.Figure7(); return t, err })
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
