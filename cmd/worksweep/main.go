// Command worksweep runs the server-class workload sweep: the
// tuned-vs-untuned trend study and the sampling-error taxonomy for
// registry workloads across the widened 32-128-node machine matrix,
// writing the committed WORKLOAD_SWEEP_<date>.json evidence file.
//
// Usage:
//
//	worksweep -quick -json WORKLOAD_SWEEP_2026-08-07.json
//	worksweep -workloads barnes,gups -sizes 32,64
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"flashsim/internal/cliutil"
	"flashsim/internal/core"
	"flashsim/internal/harness"
	"flashsim/internal/workload"
)

// report is the committed JSON evidence: the widened trend study and
// sampling taxonomy rows, plus enough provenance to rerun it.
type report struct {
	Date      string                     `json:"date"`
	Scale     string                     `json:"scale"`
	Sizes     []int                      `json:"sizes"`
	Workloads []string                   `json:"workloads"`
	Trend     []harness.WorkloadTrendRow `json:"trend"`
	Sampling  []harness.SamplingRow      `json:"sampling"`
	Schedule  map[string]uint64          `json:"schedule"`
	WallMS    float64                    `json:"wall_ms"`
}

func main() {
	log.SetFlags(0)
	var (
		names   = flag.String("workloads", "barnes,gups,oltp,webserve", "comma-separated registry workload names")
		sizestr = flag.String("sizes", "", "comma-separated node counts (default 32,64,128)")
		quick   = flag.Bool("quick", false, "use the registry's quick problem sizes")
		jsonOut = flag.String("json", "", "write the sweep report as JSON to this file")
		date    = flag.String("date", time.Now().Format("2006-01-02"), "date stamp recorded in the report")
		cf      = cliutil.Register()
	)
	flag.Parse()
	if err := cf.Finish(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := cf.Close(); err != nil {
			log.Print(err)
		}
	}()

	var workloads []string
	for _, n := range strings.Split(*names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, err := workload.Lookup(n); err != nil {
			log.Fatal(err)
		}
		workloads = append(workloads, n)
	}
	sizes := core.WideSizes
	if *sizestr != "" {
		sizes = nil
		for _, s := range strings.Split(*sizestr, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("-sizes: %v", err)
			}
			sizes = append(sizes, v)
		}
	}

	scale := harness.ScaleFull
	if *quick {
		scale = harness.ScaleQuick
	}
	pool, _, err := cf.Pool()
	if err != nil {
		log.Fatal(err)
	}
	s := harness.NewSessionWithPool(scale, pool)
	s.Override = cf.Apply

	t0 := time.Now()
	data, text, err := s.ExperimentWorkloadSweep(workloads, sizes...)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(t0)
	fmt.Print(text)
	fmt.Printf("[sweep took %v; runner: %s]\n", wall.Round(time.Millisecond), pool.Stats())

	if *jsonOut != "" {
		scaleName := "full"
		if *quick {
			scaleName = "quick"
		}
		sc := data.Sampling.Schedule
		rep := report{
			Date:      *date,
			Scale:     scaleName,
			Sizes:     data.Sizes,
			Workloads: workloads,
			Trend:     data.Trend,
			Sampling:  data.Sampling.Rows,
			Schedule: map[string]uint64{
				"period": sc.Period, "window": sc.Window, "warmup": sc.Warmup, "phase": sc.Phase,
			},
			WallMS: float64(wall.Microseconds()) / 1e3,
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(out, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}
