// Command tune closes the simulation loop for one simulator
// configuration: it runs the snbench microbenchmarks against the
// hardware reference, fits the simulator's parameters, and prints the
// calibration report and the before/after dependent-load table.
//
// Usage:
//
//	tune -sim simos-mipsy -mhz 225
//	tune -sim simos-mxs
//	tune -sim simos-mipsy -metrics-out m.json  # per-run counter report
package main

import (
	"flag"
	"fmt"
	"log"

	"flashsim/internal/cliutil"
	"flashsim/internal/core"
	"flashsim/internal/machine"
	"flashsim/internal/proto"
)

func main() {
	log.SetFlags(0)
	var (
		simName = flag.String("sim", "simos-mipsy", "simos-mipsy, simos-mxs, solo-mipsy")
		mhz     = flag.Int("mhz", 150, "Mipsy clock (150, 225, 300)")
		cf      = cliutil.Register()
	)
	flag.Parse()
	if err := cf.Finish(); err != nil {
		log.Fatal(err)
	}
	if err := cf.ForbidTrace("tune"); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := cf.Close(); err != nil {
			log.Print(err)
		}
	}()
	// An interrupt flushes the same artifacts before exiting.
	stop := cf.ExitOnSignal()
	defer stop()

	var cfg machine.Config
	switch *simName {
	case "simos-mipsy":
		cfg = core.SimOSMipsy(4, *mhz, true)
	case "simos-mxs":
		cfg = core.SimOSMXS(4, true)
	case "solo-mipsy":
		cfg = core.SoloMipsy(4, *mhz, true)
	default:
		log.Fatalf("unknown simulator %q", *simName)
	}
	cfg, err := cf.Apply(cfg)
	if err != nil {
		log.Fatal(err)
	}

	pool, _, err := cf.Pool()
	if err != nil {
		log.Fatal(err)
	}
	defer func() { fmt.Printf("[runner: %s]\n", pool.Stats()) }()

	ref := core.NewReference(4, true)
	ref.Pool = pool
	cal := core.NewCalibrator(ref)
	cal.Pool = pool
	fmt.Printf("calibrating %s against the hardware reference...\n", cfg.Name)
	c, err := cal.Calibrate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nadjustments (fitting log):")
	for _, a := range c.Report {
		fmt.Printf("  %v\n", a)
	}
	fmt.Println("\nparameter diff (untuned -> tuned, by registry path):")
	fmt.Print(c.RenderDiff())

	hwLat, err := cal.DependentLoadLatencies()
	if err != nil {
		log.Fatal(err)
	}
	tuned := c.Apply(cfg)
	fmt.Println("\ndependent loads (ns; relative to hardware):")
	fmt.Printf("  %-22s %8s %16s %16s\n", "case", "hw", "untuned", "tuned")
	for _, pc := range []proto.Case{
		proto.LocalClean, proto.LocalDirtyRemote, proto.RemoteClean,
		proto.RemoteDirtyHome, proto.RemoteDirtyRemote,
	} {
		u, err := cal.SimDepLatency(cfg, pc)
		if err != nil {
			log.Fatal(err)
		}
		tn, err := cal.SimDepLatency(tuned, pc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %8.0f %8.0f (%.2f) %8.0f (%.2f)\n",
			pc, hwLat[pc], u, u/hwLat[pc], tn, tn/hwLat[pc])
	}
}
