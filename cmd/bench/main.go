// Command bench runs the repo's performance-trajectory suite — the
// event-queue and emitter microbenchmarks plus quick-scale simulator
// and figure benchmarks — and writes the results as a BENCH_<date>.json
// record. Committing one such file per perf-relevant change turns the
// repo history into a machine-checkable performance trajectory: any
// future PR's speed or allocation claim can be diffed against the
// previous record instead of taken on faith.
//
// Usage:
//
//	bench                      # writes BENCH_<today>.json
//	bench -out BENCH_x.json    # explicit output path
//	bench -match queue         # run only benchmarks whose name matches
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"flashsim/internal/core"
	"flashsim/internal/emitter"
	"flashsim/internal/harness"
	"flashsim/internal/hw"
	"flashsim/internal/isa"
	"flashsim/internal/machine"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
	"flashsim/internal/workload"
)

// trajectorySchema versions the BENCH_*.json layout. Schema 2 added
// the per-entry Shards count (intra-run parallel execution).
const trajectorySchema = 2

// Entry is one benchmark's outcome.
type Entry struct {
	Name string
	// N is the iteration count the harness settled on.
	N           int
	NsPerOp     float64
	AllocsPerOp int64
	BytesPerOp  int64
	// Shards is the intra-run shard count the entry's simulations used
	// (1 = serial). Scaling claims are only comparable between records
	// whose CPUs/MaxProcs host metadata can actually seat the shards.
	Shards int
	// Extra carries b.ReportMetric values (e.g. "sim-instrs/op").
	Extra map[string]float64 `json:",omitempty"`
}

// Trajectory is the whole BENCH_<date>.json document.
type Trajectory struct {
	Schema   int
	Date     string
	Go       string
	GOOS     string
	GOARCH   string
	CPUs     int
	MaxProcs int
	Entries  []Entry
}

// nopHandler discards events (mirrors the sim package's benchmark
// handler, which is not exported).
type nopHandler struct{}

func (nopHandler) HandleEvent(sim.Ticks, uint64) {}

// benchmarks is the curated suite: the allocation-sensitive hot paths
// first (their allocs/op figures are the regression contract), then the
// simulator-speed and end-to-end figure benchmarks at quick scale.
var benchmarks = []struct {
	name string
	fn   func(b *testing.B)
	// shards is the intra-run shard count recorded with the entry
	// (0 means serial and is normalized to 1 in the record).
	shards int
}{
	{name: "event-queue-hold", fn: func(b *testing.B) {
		q := sim.NewQueue()
		var h sim.Handler = nopHandler{}
		const pending = 64
		for i := 0; i < pending; i++ {
			q.ScheduleFn(sim.Ticks(i), int32(i&3), h, uint64(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Step()
			q.ScheduleFn(q.Now()+pending, int32(i&3), h, uint64(i))
		}
	}},
	{name: "event-queue-closure", fn: func(b *testing.B) {
		q := sim.NewQueue()
		nop := func(sim.Ticks) {}
		const pending = 64
		for i := 0; i < pending; i++ {
			q.Schedule(sim.Ticks(i), int32(i&3), nop)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Step()
			q.Schedule(q.Now()+pending, int32(i&3), nop)
		}
	}},
	{name: "emitter-throughput", fn: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := emitter.Start(1, func(t *emitter.Thread) { t.IntOps(1 << 16) })
			n := 0
			for {
				if _, ok := s.Readers[0].Next(); !ok {
					break
				}
				n++
			}
			s.Wait()
			if n != 1<<16 {
				b.Fatal("short stream")
			}
		}
		b.ReportMetric(float64(int(1)<<16), "instrs/op")
	}},
	{name: "isa-encode", fn: func(b *testing.B) {
		ins := benchInstrs(1 << 15)
		buf := isa.EncodeStream(ins)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = buf[:0]
			for _, in := range ins {
				buf = isa.AppendInstr(buf, in)
			}
		}
		b.ReportMetric(float64(len(ins)), "instrs/op")
		b.ReportMetric(float64(len(buf))/float64(len(ins)), "bytes/instr")
	}},
	{name: "isa-decode", fn: func(b *testing.B) {
		ins := benchInstrs(1 << 15)
		enc := isa.EncodeStream(ins)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rest := enc
			for len(rest) > 0 {
				_, n, err := isa.DecodeInstr(rest)
				if err != nil {
					b.Fatal(err)
				}
				rest = rest[n:]
			}
		}
		b.ReportMetric(float64(len(ins)), "instrs/op")
	}},
	{name: "trace-roundtrip", fn: func(b *testing.B) {
		ins := benchInstrs(1 << 15)
		var compressed int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			tw, err := trace.NewWriter(&buf, trace.Meta{Workload: "bench", Threads: 1})
			if err != nil {
				b.Fatal(err)
			}
			for off := 0; off < len(ins); off += 256 {
				end := off + 256
				if end > len(ins) {
					end = len(ins)
				}
				tw.Tap(0, ins[off:end])
			}
			if err := tw.Finish(); err != nil {
				b.Fatal(err)
			}
			tr, err := trace.Decode(buf.Bytes())
			if err != nil {
				b.Fatal(err)
			}
			cur := tr.Thread(0)
			var got uint64
			for {
				batch, err := cur.NextBatch()
				if err != nil {
					b.Fatal(err)
				}
				if batch == nil {
					break
				}
				got += uint64(len(batch))
			}
			if got != uint64(len(ins)) {
				b.Fatalf("round-trip lost instructions: %d != %d", got, len(ins))
			}
			compressed = int(tr.CompressedBytes())
		}
		b.ReportMetric(float64(len(ins)), "instrs/op")
		b.ReportMetric(float64(compressed)/float64(len(ins)), "comp-bytes/instr")
	}},
	{name: "sim-speed-mipsy", fn: func(b *testing.B) {
		benchRun(b, core.SimOSMipsy(1, 150, true), "fft")
	}},
	{name: "sim-speed-mxs", fn: func(b *testing.B) {
		benchRun(b, core.SimOSMXS(1, true), "fft")
	}},
	{name: "sim-speed-hw", fn: func(b *testing.B) {
		cfg := hw.Config(1, true)
		cfg.JitterPct = 0
		benchRun(b, cfg, "fft")
	}},
	{name: "sim-speed-gups", fn: func(b *testing.B) {
		// Hotspot random-update stressor: almost every access is a
		// remote miss, so this prices the memory-system event path
		// where sim-speed-mipsy (FFT) prices mostly-compute streams.
		benchRun(b, core.SimOSMipsy(1, 150, true), "gups")
	}},
	{name: "sim-speed-oltp", fn: func(b *testing.B) {
		// Pointer-chasing transaction mix: dependent loads and lock
		// traffic, the latency-bound end of the simulator-speed axis.
		benchRun(b, core.SimOSMipsy(1, 150, true), "oltp")
	}},
	{name: "sim-speed-sampled", fn: func(b *testing.B) {
		// Execution-driven sampling under the default warm schedule: the
		// speed side of the validate -experiment sampling error rows.
		// Live generation and warm-state touches bound the win.
		cfg := core.SimOSMipsy(1, 150, true)
		cfg.Sampling = machine.DefaultSampling()
		benchRun(b, cfg, "fft")
	}},
	{name: "sim-speed-sampled-replay", fn: func(b *testing.B) {
		// The replay image as the fast-forward stream, default schedule:
		// collapsed compute runs skip in O(1) but warm touches remain.
		benchSampledReplay(b, machine.DefaultSampling())
	}},
	{name: "sim-speed-sampled-replay-cold", fn: func(b *testing.B) {
		// The speed end of the trade-off: trace fast-forward with a
		// sparse cold schedule (2% detailed, no warm touches). Compare
		// against sim-speed-mipsy for the sampled-vs-execution-driven
		// speedup; validate -experiment sampling prices the error.
		sched := machine.DefaultSampling()
		sched.Period = 100_000
		sched.ColdState = true
		benchSampledReplay(b, sched)
	}},
	{name: "figure1-quick", fn: func(b *testing.B) {
		s := harness.NewSession(harness.ScaleQuick)
		for i := 0; i < b.N; i++ {
			if _, _, err := s.Figure1(); err != nil {
				b.Fatal(err)
			}
		}
	}},
	// The shard-scaling curve: the same figure with every simulation
	// partitioned across 2/4/8 host cores (figure1-quick above is the
	// shards=1 baseline). Results are bit-identical at every rung —
	// only the wall clock moves — so ns/op across these four entries
	// against the record's CPUs field IS the intra-run speedup curve.
	{name: "figure1-quick-shards2", fn: benchFigure1Sharded(2), shards: 2},
	{name: "figure1-quick-shards4", fn: benchFigure1Sharded(4), shards: 4},
	{name: "figure1-quick-shards8", fn: benchFigure1Sharded(8), shards: 8},
	{name: "figure1-sampled", fn: func(b *testing.B) {
		// The same figure with every study simulator running the default
		// sampling schedule: the speed axis of the sampled-simulation
		// trade-off, paired with validate -experiment sampling's error
		// axis. The hardware reference is outside the override and stays
		// as-is, so the delta vs figure1-quick is the simulators' win.
		s := harness.NewSession(harness.ScaleQuick)
		s.Override = func(cfg machine.Config) (machine.Config, error) {
			cfg.Sampling = machine.DefaultSampling()
			return cfg, nil
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := s.Figure1(); err != nil {
				b.Fatal(err)
			}
		}
	}},
}

// benchInstrs builds a deterministic instruction mix shaped like a
// captured per-thread stream: strided loads and stores with short
// dependence distances, ALU/FP work between them, periodic branches,
// and an occasional lock round-trip. The codec benchmarks use it so
// their ns/op reflect the field-presence distribution of real traces,
// not all-zero or all-full instructions.
func benchInstrs(n int) []isa.Instr {
	ins := make([]isa.Instr, 0, n+8)
	for i := 0; len(ins) < n; i++ {
		base := uint64(0x10_0000 + (i%4096)*64)
		ins = append(ins,
			isa.Instr{Op: isa.Load, Addr: base, Size: 8, Dep1: 2},
			isa.Instr{Op: isa.IntALU, Dep1: 1, Dep2: 3},
			isa.Instr{Op: isa.FPMul, Dep1: 1},
			isa.Instr{Op: isa.Store, Addr: base + 8, Size: 8, Dep1: 2},
			isa.Instr{Op: isa.IntALU},
			isa.Instr{Op: isa.Branch, Dep1: 1},
		)
		if i%64 == 63 {
			ins = append(ins,
				isa.Instr{Op: isa.Lock, Aux: uint32(i%8) + 1},
				isa.Instr{Op: isa.Unlock, Aux: uint32(i%8) + 1})
		}
	}
	return ins[:n]
}

// benchProg resolves a registry workload at its quick defaults for one
// processor — the benchmark suite's problem sizes.
func benchProg(b *testing.B, name string) emitter.Program {
	def, err := workload.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	vals, err := def.Resolve(nil, true)
	if err != nil {
		b.Fatal(err)
	}
	return def.Build(vals, 1)
}

// benchSampledReplay captures the benchmark FFT once (outside the
// timer — a trace is captured once and replayed many times) and then
// measures sampled replay of the image under sched.
func benchSampledReplay(b *testing.B, sched machine.SamplingConfig) {
	cfg := core.SimOSMipsy(1, 150, true)
	prog := benchProg(b, "fft")
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, trace.Meta{Workload: prog.FullName(), Threads: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := machine.RunCapture(cfg, prog, tw); err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Decode(buf.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	img, err := machine.PrepareReplay(tr)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Sampling = sched
	b.ReportAllocs()
	b.ResetTimer()
	var res machine.Result
	for i := 0; i < b.N; i++ {
		res, err = machine.RunReplay(cfg, img)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Instructions), "sim-instrs/op")
	b.ReportMetric(100*float64(res.Sampling.DetailedInstrs)/float64(res.Instructions), "detailed-%")
}

// benchFigure1Sharded builds a figure1-quick variant whose simulations
// all run with the given intra-run shard count.
func benchFigure1Sharded(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		s := harness.NewSession(harness.ScaleQuick)
		s.Override = func(cfg machine.Config) (machine.Config, error) {
			cfg.Shards = shards
			return cfg, nil
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := s.Figure1(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchRun measures one quick machine run of a registry workload and
// reports simulated instructions per op, the simulator-speed axis of
// the paper.
func benchRun(b *testing.B, cfg machine.Config, name string) {
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := machine.Run(cfg, benchProg(b, name))
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Instructions
	}
	b.ReportMetric(float64(instrs), "sim-instrs/op")
}

func main() {
	log.SetFlags(0)
	var (
		out   = flag.String("out", "", `output path, or "-" for stdout (default BENCH_<date>.json)`)
		date  = flag.String("date", "", "date stamp for the record (default today, YYYY-MM-DD)")
		match = flag.String("match", "", "run only benchmarks whose name contains this substring")
	)
	flag.Parse()

	day := *date
	if day == "" {
		day = time.Now().Format("2006-01-02")
	}
	path := *out
	if path == "" {
		path = "BENCH_" + day + ".json"
	}

	traj := Trajectory{
		Schema:   trajectorySchema,
		Date:     day,
		Go:       runtime.Version(),
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		CPUs:     runtime.NumCPU(),
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, bm := range benchmarks {
		if *match != "" && !strings.Contains(bm.name, *match) {
			continue
		}
		r := testing.Benchmark(bm.fn)
		shards := bm.shards
		if shards == 0 {
			shards = 1
		}
		e := Entry{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Shards:      shards,
		}
		if len(r.Extra) > 0 {
			e.Extra = r.Extra
		}
		traj.Entries = append(traj.Entries, e)
		fmt.Printf("%-24s %12.1f ns/op %8d allocs/op", e.Name, e.NsPerOp, e.AllocsPerOp)
		for k, v := range e.Extra {
			fmt.Printf("  %s=%.0f", k, v)
		}
		fmt.Println()
	}
	if len(traj.Entries) == 0 {
		log.Fatalf("no benchmark matches %q", *match)
	}

	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if path == "-" {
		os.Stdout.Write(append(data, '\n'))
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(traj.Entries))
}
