// Command flashsim runs one workload on one machine configuration and
// prints the detailed result — the general-purpose front end to the
// library.
//
// Usage:
//
//	flashsim -app fft -procs 4                    # hardware reference
//	flashsim -app radix -p radix=32 -procs 16
//	flashsim -app ocean -sim solo-mipsy -mhz 225
//	flashsim -app lu -sim simos-mxs -mem numa
//	flashsim -app gups -p hot_pct=50 -procs 32
//	flashsim -list-workloads                  # registry: names, parameters
//	flashsim -sim simos-mipsy -set os.tlb.handler_cycles=65
//	flashsim -app fft -metrics-out m.json     # per-run counter report
//	flashsim -app radix -check-coherence      # directory invariant checks
//	flashsim -app fft -trace-out fft.fltr     # capture the instruction streams
//	flashsim -app fft -trace-in fft.fltr      # trace-driven replay of a capture
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"flashsim/internal/cliutil"
	"flashsim/internal/core"
	"flashsim/internal/hw"
	"flashsim/internal/machine"
	"flashsim/internal/proto"
	"flashsim/internal/sim"
)

func main() {
	log.SetFlags(0)
	var (
		procs   = flag.Int("procs", 1, "processor count")
		simName = flag.String("sim", "hw", "hw, simos-mipsy, simos-mxs, solo-mipsy")
		mhz     = flag.Int("mhz", 150, "Mipsy clock (150, 225, 300)")
		mem     = flag.String("mem", "flashlite", "memory system: flashlite, numa")
		seed    = flag.Uint64("seed", 1, "jitter/branch seed")
		check   = flag.Bool("check-coherence", false, "verify directory protocol invariants after every operation")
		wf      = cliutil.RegisterWorkload()
		cf      = cliutil.Register()
	)
	flag.Parse()
	if err := wf.Finish(); err != nil {
		log.Fatal(err)
	}
	if err := cf.Finish(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := cf.Close(); err != nil {
			log.Print(err)
		}
	}()
	// An interrupt flushes the same artifacts before exiting.
	stop := cf.ExitOnSignal()
	defer stop()

	var cfg machine.Config
	switch *simName {
	case "hw":
		cfg = hw.Config(*procs, true)
	case "simos-mipsy":
		cfg = core.SimOSMipsy(*procs, *mhz, true)
	case "simos-mxs":
		cfg = core.SimOSMXS(*procs, true)
	case "solo-mipsy":
		cfg = core.SoloMipsy(*procs, *mhz, true)
	default:
		log.Fatalf("unknown simulator %q", *simName)
	}
	if *mem == "numa" {
		cfg = core.WithNUMA(cfg)
	}
	cfg.Seed = *seed
	cfg.CheckCoherence = *check
	cfg, err := cf.Apply(cfg)
	if err != nil {
		log.Fatal(err)
	}

	prog, _, err := wf.Program(*procs)
	if err != nil {
		log.Fatal(err)
	}

	pool, store, err := cf.Pool()
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()
	out, err := cf.ExecuteRun(context.Background(), pool, cfg, prog, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	res := out.Result
	switch out.Mode {
	case cliutil.ModeCapture:
		fmt.Printf("[captured trace: %s]\n", cf.TraceOut)
	case cliutil.ModeReplay:
		fmt.Printf("[trace-driven: replayed %s (%d instructions)]\n", out.Image.Workload(), out.Image.Instructions())
	}
	wall := time.Since(t0)
	if st := pool.Stats(); st.CacheHits > 0 {
		fmt.Printf("[memoized: result served from %s]\n", store.Dir())
	}

	fmt.Printf("%s on %s, %d processor(s)\n", prog.FullName(), cfg.Name, *procs)
	fmt.Printf("  parallel section: %.3f ms simulated\n", res.ExecSeconds()*1e3)
	fmt.Printf("  total:            %.3f ms simulated (%v wall, %.1fM instr/s)\n",
		float64(res.Total)/sim.TickHz*1e3, wall.Round(time.Millisecond),
		float64(res.Instructions)/wall.Seconds()/1e6)
	fmt.Printf("  instructions:     %d\n", res.Instructions)
	fmt.Printf("  L1 miss rate:     %.2f%%\n", 100*res.L1MissRate())
	fmt.Printf("  L2 miss rate:     %.2f%%\n", 100*res.L2MissRate())
	fmt.Printf("  TLB misses:       %d\n", res.TLBMisses)
	fmt.Printf("  pages mapped:     %d\n", res.PagesMapped)
	if res.Sampled {
		s := res.Sampling
		fmt.Printf("  sampling:         %d windows; %d detailed + %d functional instrs (%d warmup, %d warm touches)\n",
			s.Windows, s.DetailedInstrs, s.FunctionalInstrs, s.WarmupInstrs, s.WarmTouches)
	}
	fmt.Printf("  protocol cases:\n")
	for c := proto.Case(0); c < proto.NumCases; c++ {
		if res.CaseCounts[c] > 0 {
			fmt.Printf("    %-22s %d\n", c, res.CaseCounts[c])
		}
	}
	if res.Dir.StaleInvals > 0 {
		fmt.Printf("  stale invalidations: %d\n", res.Dir.StaleInvals)
	}
}
