// Package flashsim reproduces "FLASH vs. (Simulated) FLASH: Closing the
// Simulation Loop" (Gibson, Kunz, Ofelt, Horowitz, Hennessy, Heinrich;
// ASPLOS 2000): a study of how accurately a family of architectural
// simulators — Solo/Mipsy, SimOS-Mipsy, SimOS-MXS over the FlashLite and
// generic NUMA memory-system models — predicts the performance of the
// Stanford FLASH multiprocessor, and of the microbenchmark-driven tuning
// loop that closes the gap.
//
// The FLASH hardware is long gone, so the gold standard is a
// maximum-fidelity reference model (internal/hw); see DESIGN.md for the
// substitution argument and the system inventory, EXPERIMENTS.md for
// paper-vs-measured results on every table and figure, and README.md to
// get started. The benchmarks in this package regenerate each table and
// figure at reduced problem sizes.
package flashsim
